// Live admission dashboard — what a provider's monitoring sees.
//
// Runs the bursty cloud scenario through the event simulator with the
// stock observers attached and renders the windowed acceptance-rate
// series, utilization and SLA-backlog statistics, and (optionally) the
// raw event log. Demonstrates the sim/ observer API.
//
// Usage: live_dashboard [--eps=0.1] [--machines=4] [--jobs=1500]
//                       [--window=25] [--log-events]
#include <iostream>

#include "common/ascii_chart.hpp"
#include "common/cli.hpp"
#include "common/histogram.hpp"
#include "common/table.hpp"
#include "core/threshold.hpp"
#include "baselines/greedy.hpp"
#include "sim/observers.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

int main(int argc, char** argv) {
  using namespace slacksched;
  const CliArgs args(argc, argv);
  const double eps = args.get_double("eps", 0.1);
  const int machines = static_cast<int>(args.get_int("machines", 4));
  const std::size_t jobs = static_cast<std::size_t>(args.get_int("jobs", 1500));
  const double window = args.get_double("window", 25.0);

  WorkloadConfig config = scenario("cloud-burst", eps, 11);
  config.n = jobs;
  const Instance instance = generate_workload(config);

  std::cout << "=== live admission dashboard ===\n"
            << config.to_string() << "\n\n";

  // The job-size mix of the trace (heavy-tailed by construction).
  Histogram sizes = Histogram::logarithmic(config.size_min,
                                           config.size_max, 8);
  for (const Job& job : instance.jobs()) sizes.add(job.proc);
  std::cout << "job-size distribution:\n";
  sizes.print(std::cout);
  std::cout << "\n";

  struct PolicyRow {
    std::string name;
    double utilization;
    int peak_running;
    double peak_backlog;
    double avg_backlog;
    double volume;
    std::vector<double> rates;
  };
  std::vector<PolicyRow> rows;

  auto run_policy = [&](OnlineScheduler& scheduler) {
    Simulator simulator(scheduler);
    UtilizationObserver util(machines);
    BacklogObserver backlog;
    AcceptanceRateObserver acceptance(window);
    EventLogObserver log(args.get_bool("log-events", false) ? &std::cout
                                                            : nullptr);
    simulator.add_observer(&util);
    simulator.add_observer(&backlog);
    simulator.add_observer(&acceptance);
    simulator.add_observer(&log);
    const RunResult result = simulator.run(instance);
    rows.push_back({scheduler.name(), util.average_utilization(),
                    util.peak_running(), backlog.peak_backlog(),
                    backlog.average_backlog(),
                    result.metrics.accepted_volume, acceptance.rates()});
  };

  ThresholdScheduler threshold(eps, machines);
  GreedyScheduler greedy(machines);
  run_policy(threshold);
  run_policy(greedy);

  Table table({"policy", "volume", "utilization", "peak running",
               "peak backlog", "avg backlog"});
  for (const PolicyRow& row : rows) {
    table.add_row({row.name, Table::format(row.volume, 1),
                   Table::format(row.utilization, 3),
                   std::to_string(row.peak_running),
                   Table::format(row.peak_backlog, 1),
                   Table::format(row.avg_backlog, 1)});
  }
  table.print(std::cout);

  // Acceptance-rate series, one chart for both policies.
  std::vector<ChartSeries> series;
  const char glyphs[] = {'T', 'G'};
  for (std::size_t p = 0; p < rows.size(); ++p) {
    ChartSeries s;
    s.name = rows[p].name;
    s.glyph = glyphs[p % 2];
    for (std::size_t i = 0; i < rows[p].rates.size(); ++i) {
      s.x.push_back(static_cast<double>(i + 1) * window);
      s.y.push_back(rows[p].rates[i]);
    }
    series.push_back(std::move(s));
  }
  ChartOptions options;
  options.title = "\nwindowed volume acceptance rate over time:";
  options.x_label = "time";
  options.height = 14;
  render_chart(std::cout, series, options);

  std::cout << "\nreading: during bursts the Threshold policy sheds load "
               "early (lower rate dips) to\nprotect its worst-case "
               "guarantee, while greedy fills machines and risks the "
               "adversarial\npattern of thm1_adversary. Peak backlog shows "
               "the SLA exposure each policy accumulates.\n";
  return 0;
}
