/// \file
/// The commitment-model vocabulary of the scheduler matrix (docs/models.md).
///
/// The source paper studies *commitment on arrival*: the scheduler must
/// irrevocably accept or reject a job the instant it is submitted. The
/// δ-commitment framework of Chen–Eberle–Megow–Schewior–Stein (arXiv
/// 1811.08238) relaxes this: a job may be held tentative after arrival, but
/// the scheduler must commit (or definitively not have committed, which is
/// a rejection) while a guaranteed fraction of the job's window remains.
/// The weakest model, *commitment on admission*, only binds the scheduler
/// when it actually starts a job (baselines/delayed_commit.hpp).
///
/// This header names the three models and packages each one's
/// irrevocability contract — the latest legal commitment time for a job —
/// so the validator (sched/validator.hpp) can check a decision stream
/// against the model that produced it, not just against physics.
///
/// δ parameterization. We measure the deferral budget forward from
/// arrival: under contract (kDelta, δ) a job must be decided by
///
///     τ_j = min(r_j + δ · p_j,  d_j − p_j)
///
/// i.e. at most δ processing times after release, clamped to the latest
/// start. δ = 0 collapses to commitment on arrival; δ ≥ the job's slack
/// factor collapses to commitment at the latest start, the admission
/// point. The framework paper counts the other way — commitment at the
/// latest when the remaining window is (1 + δ')·p_j — so for a job with
/// slack factor ε the two views are related by δ' = ε − δ.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/time.hpp"
#include "job/job.hpp"

namespace slacksched {

/// When an admission decision becomes irrevocable.
enum class CommitModel : std::uint8_t {
  kOnArrival = 0,    ///< decide the instant the job is submitted (the paper)
  kDelta = 1,        ///< decide within δ·p_j of arrival (arXiv 1811.08238)
  kOnAdmission = 2,  ///< decide only when the job starts (delayed commit)
};

/// Bench/report label: "on-arrival", "delta", "on-admission".
[[nodiscard]] std::string to_string(CommitModel model);

/// Inverse of to_string.
[[nodiscard]] std::optional<CommitModel> commit_model_from_label(
    std::string_view label);

/// One scheduler's irrevocability contract: the model plus its δ. The
/// engine stamps every resolved decision with the time it was rendered and
/// hands (decision, decided_at, contract) to the validator.
struct CommitmentContract {
  CommitModel model = CommitModel::kOnArrival;
  /// Deferral budget in processing times (kDelta only; ignored otherwise).
  double delta = 0.0;
  /// Fastest machine speed in the fleet the contract is checked against;
  /// 1.0 for identical machines. The latest start of a job is
  /// d_j − p_j / s_max on related machines — a slower-than-unit fleet
  /// shrinks every commitment window, a faster one extends it.
  double max_speed = 1.0;

  /// Latest time the job could still be started on the fastest machine:
  /// exactly job.latest_start() when max_speed is 1 (no division on the
  /// identical-machine path).
  [[nodiscard]] TimePoint latest_start(const Job& job) const {
    if (max_speed == 1.0) return job.latest_start();
    return job.deadline - job.proc / max_speed;
  }

  /// Latest time the contract allows the job to be committed:
  /// r_j (on arrival), min(r_j + δ·p_j, latest start) (δ-commitment), or
  /// the latest start (on admission — commitment coincides with the start).
  [[nodiscard]] TimePoint commit_deadline(const Job& job) const {
    switch (model) {
      case CommitModel::kOnArrival:
        return job.release;
      case CommitModel::kDelta:
        return std::min(job.release + delta * job.proc, latest_start(job));
      case CommitModel::kOnAdmission:
        return latest_start(job);
    }
    return job.release;
  }

  friend bool operator==(const CommitmentContract&,
                         const CommitmentContract&) = default;
};

}  // namespace slacksched
