// Loopback end-to-end coverage of the networked admission front end:
// the wire path (AdmissionClient -> AdmissionServer -> gateway -> shard
// -> decision hook -> DECISION frame) must be observationally identical
// to the in-process engine, drain must hand back exactly the counters
// AdmissionGateway::finish() reports, the HTTP metrics page must agree
// with those counters after quiesce, and protocol violations must be
// answered with an ERROR frame and a closed connection — never a hang,
// never a silent drop.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <dirent.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "baselines/greedy.hpp"
#include "common/expects.hpp"
#include "core/threshold.hpp"
#include "net/admission_client.hpp"
#include "net/admission_server.hpp"
#include "sched/engine.hpp"
#include "sched/online.hpp"
#include "workload/generators.hpp"

namespace slacksched::net {
namespace {

Instance test_instance(std::size_t n, std::uint64_t seed) {
  WorkloadConfig config;
  config.n = n;
  config.eps = 0.1;
  config.arrival_rate = 2.0;
  config.seed = seed;
  return generate_workload(config);
}

AdmissionServerConfig loopback_config(std::size_t queue_capacity) {
  AdmissionServerConfig config;
  config.gateway.shards = 1;
  config.gateway.routing = RoutingPolicy::kRoundRobin;
  // The lock-free ring requires a power-of-two bound; round instance
  // sizes up rather than sprinkling bit_ceil over every call site.
  config.gateway.queue_capacity = std::bit_ceil(queue_capacity);
  return config;
}

/// Extracts the value of an unlabelled sample from an exposition page.
double metric_value(const std::string& page, const std::string& name) {
  const std::string needle = "\n" + name + " ";
  const std::size_t pos = page.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::stod(page.substr(pos + needle.size()));
}

// ---------- equivalence with the in-process engine ----------

TEST(NetServer, LoopbackDecisionStreamEqualsRunOnline) {
  const Instance instance = test_instance(400, 2026);
  ThresholdScheduler reference(0.1, 4);
  const RunResult engine = run_online(reference, instance, RunOptions{});

  AdmissionServerConfig config = loopback_config(instance.size());
  AdmissionServer server(config, [](int) {
    return std::make_unique<ThresholdScheduler>(0.1, 4);
  });
  AdmissionClient client("127.0.0.1", server.port());

  // Pipeline everything, then read replies: a single connection into a
  // single shard preserves submission order end to end.
  std::vector<std::uint64_t> request_ids;
  for (const Job& job : instance.jobs()) {
    request_ids.push_back(client.submit(job));
  }
  std::vector<DecisionReply> replies;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    replies.push_back(client.wait_reply());
  }
  EXPECT_EQ(client.outstanding(), 0u);

  ASSERT_EQ(engine.decisions.size(), instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const DecisionRecord& expected = engine.decisions[i];
    const DecisionReply& got = replies[i];
    EXPECT_EQ(got.request_id, request_ids[i]) << "reply order broke at " << i;
    EXPECT_EQ(got.job_id, expected.job.id);
    ASSERT_TRUE(got.is_decision());
    EXPECT_EQ(got.outcome == Outcome::kAccepted, expected.decision.accepted);
    if (expected.decision.accepted) {
      EXPECT_EQ(got.machine, expected.decision.machine);
      EXPECT_EQ(got.start, expected.decision.start);  // bit-exact doubles
    }
  }

  // The DRAINED counters are the engine's RunMetrics, bit for bit.
  const DrainedMsg drained = client.drain();
  EXPECT_EQ(drained.submitted, engine.metrics.submitted);
  EXPECT_EQ(drained.accepted, engine.metrics.accepted);
  EXPECT_EQ(drained.rejected, engine.metrics.rejected);
  EXPECT_EQ(drained.accepted_volume, engine.metrics.accepted_volume);
  EXPECT_EQ(drained.rejected_volume, engine.metrics.rejected_volume);
  EXPECT_EQ(drained.makespan, engine.metrics.makespan);
  EXPECT_EQ(drained.clean, 1);

  // The metrics page after drain reports the same final counters.
  const std::string page = http_get_metrics("127.0.0.1", server.port());
  EXPECT_EQ(metric_value(page, "slacksched_accepted_total"),
            static_cast<double>(engine.metrics.accepted));
  EXPECT_EQ(metric_value(page, "slacksched_rejected_total"),
            static_cast<double>(engine.metrics.rejected));
  EXPECT_EQ(metric_value(page, "slacksched_submitted_total"),
            static_cast<double>(engine.metrics.submitted));
}

TEST(NetServer, BatchedSubmitMatchesSingleSubmits) {
  const Instance instance = test_instance(300, 7);
  ThresholdScheduler reference(0.1, 4);
  const RunResult engine = run_online(reference, instance, RunOptions{});

  AdmissionServerConfig config = loopback_config(instance.size());
  AdmissionServer server(config, [](int) {
    return std::make_unique<ThresholdScheduler>(0.1, 4);
  });
  AdmissionClient client("127.0.0.1", server.port());

  const std::uint64_t base = client.submit_batch(instance.jobs());
  std::map<std::uint64_t, DecisionReply> by_request;
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const DecisionReply reply = client.wait_reply();
    by_request[reply.request_id] = reply;
  }
  ASSERT_EQ(by_request.size(), instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const DecisionRecord& expected = engine.decisions[i];
    ASSERT_TRUE(by_request.count(base + i));
    const DecisionReply& got = by_request[base + i];
    EXPECT_EQ(got.job_id, expected.job.id);
    EXPECT_EQ(got.outcome == Outcome::kAccepted, expected.decision.accepted);
  }
}

// ---------- no silent drops under backpressure ----------

TEST(NetServer, EverySubmitIsAnsweredUnderBackpressure) {
  // Tiny queue + slow-ish consumer: many submissions bounce with
  // kRejectedQueueFull. Contract: submitted == decisions + rejects.
  AdmissionServerConfig config = loopback_config(8);
  config.gateway.batch_size = 4;
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(2);
  });

  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 500;
  std::vector<std::size_t> decided(kClients, 0);
  std::vector<std::size_t> shed(kClients, 0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      AdmissionClient client("127.0.0.1", server.port());
      for (int i = 0; i < kJobsPerClient; ++i) {
        const JobId id = c * kJobsPerClient + i;
        Job job;
        job.id = id;
        job.release = 0.0;
        job.proc = 1.0;
        job.deadline = 1e9;
        (void)client.submit(job);
        const DecisionReply reply = client.wait_reply();
        EXPECT_EQ(reply.job_id, id);
        if (reply.is_decision()) {
          ++decided[static_cast<std::size_t>(c)];
        } else {
          EXPECT_EQ(reply.outcome, Outcome::kRejectedQueueFull);
          ++shed[static_cast<std::size_t>(c)];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::size_t total_decided = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(decided[static_cast<std::size_t>(c)] +
                  shed[static_cast<std::size_t>(c)],
              static_cast<std::size_t>(kJobsPerClient));
    total_decided += decided[static_cast<std::size_t>(c)];
  }
  const GatewayResult result = server.shutdown();
  EXPECT_EQ(result.merged.submitted, total_decided);
}

// ---------- drain semantics ----------

TEST(NetServer, SubmitAfterDrainIsRejectedClosed) {
  AdmissionServerConfig config = loopback_config(64);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(2);
  });
  AdmissionClient client("127.0.0.1", server.port());

  Job job;
  job.id = 1;
  job.proc = 1.0;
  job.deadline = 100.0;
  const DecisionReply before = client.submit_wait(job);
  EXPECT_TRUE(before.is_decision());

  const DrainedMsg drained = client.drain();
  EXPECT_EQ(drained.submitted, 1u);
  EXPECT_TRUE(server.drained());

  job.id = 2;
  const DecisionReply after = client.submit_wait(job);
  EXPECT_EQ(after.outcome, Outcome::kRejectedClosed);

  // A second DRAIN answers again with the same cached counters.
  const DrainedMsg again = client.drain();
  EXPECT_EQ(again.submitted, drained.submitted);
  EXPECT_EQ(again.accepted, drained.accepted);
}

TEST(NetServer, PingPongEchoesToken) {
  AdmissionServerConfig config = loopback_config(16);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(1);
  });
  AdmissionClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.ping(0xdeadbeef), 0xdeadbeefu);
  // Pipelined submits in flight are buffered, not lost, across a ping.
  Job job;
  job.id = 10;
  job.proc = 1.0;
  job.deadline = 100.0;
  (void)client.submit(job);
  EXPECT_EQ(client.ping(7), 7u);
  DecisionReply reply;
  while (!client.try_reply(reply)) {
    reply = client.wait_reply();
    break;
  }
  EXPECT_EQ(reply.job_id, 10);
}

// ---------- config validation ----------

TEST(NetServer, RefusesToStartOnInvalidGatewayConfig) {
  AdmissionServerConfig config;
  config.gateway.shards = 0;
  config.gateway.enable_tracing = true;
  config.gateway.trace_capacity = 1000;  // not a power of two
  config.gateway.metrics_textfile = "/tmp/slacksched-net-test-metrics.prom";
  config.gateway.metrics_period = std::chrono::milliseconds{0};
  try {
    AdmissionServer server(config, [](int) {
      return std::make_unique<GreedyScheduler>(1);
    });
    FAIL() << "server started on an invalid config";
  } catch (const PreconditionError& e) {
    const std::string message = e.what();
    // Every problem is named in the single refusal message.
    EXPECT_NE(message.find("shards"), std::string::npos);
    EXPECT_NE(message.find("trace_capacity"), std::string::npos);
    EXPECT_NE(message.find("metrics_period"), std::string::npos);
  }
}

TEST(NetServer, GatewayConfigValidateListsEveryProblem) {
  GatewayConfig config;
  EXPECT_TRUE(config.validate().empty());  // defaults are deployable
  config.shards = 0;
  config.queue_capacity = 0;
  config.batch_size = 0;
  config.pop_timeout = std::chrono::milliseconds{0};
  EXPECT_GE(config.validate().size(), 4u);
}

// ---------- protocol violations over a real socket ----------

/// Raw loopback socket for sending hand-forged bytes.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    SLACKSCHED_EXPECTS(fd_ >= 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    SLACKSCHED_EXPECTS(
        ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr) == 1);
    SLACKSCHED_EXPECTS(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                                 sizeof(addr)) == 0);
  }
  ~RawConn() { ::close(fd_); }

  void send_bytes(const void* data, std::size_t n) {
    ASSERT_EQ(::send(fd_, data, n, MSG_NOSIGNAL),
              static_cast<ssize_t>(n));
  }

  /// Reads until EOF and returns everything.
  std::string read_to_eof() {
    std::string out;
    char buf[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Blocks until the next well-formed protocol frame arrives.
  Frame read_frame() {
    Frame frame;
    while (true) {
      const FrameDecoder::Status status = decoder_.next(frame);
      SLACKSCHED_EXPECTS(status != FrameDecoder::Status::kError);
      if (status == FrameDecoder::Status::kFrame) return frame;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      SLACKSCHED_EXPECTS(n > 0);
      decoder_.feed(buf, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  FrameDecoder decoder_;
};

TEST(NetServer, MalformedStreamGetsErrorFrameAndClose) {
  AdmissionServerConfig config = loopback_config(16);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(1);
  });
  RawConn raw(server.port());
  // A bad-version frame: framing is unrecoverable, so the server answers
  // with one ERROR frame and closes.
  std::vector<char> bytes;
  encode_ping(bytes, 1);
  bytes[0] = 9;  // wrong protocol version
  raw.send_bytes(bytes.data(), bytes.size());
  const std::string response = raw.read_to_eof();

  FrameDecoder decoder;
  decoder.feed(response.data(), response.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_NE(parse_error_message(frame).find("version"), std::string::npos);

  // The server survives to serve well-formed clients.
  AdmissionClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.ping(3), 3u);
}

TEST(NetServer, ClientOnlyFramesAreAProtocolError) {
  AdmissionServerConfig config = loopback_config(16);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(1);
  });
  RawConn raw(server.port());
  std::vector<char> bytes;
  encode_pong(bytes, 5);  // server-to-client frame sent at the server
  raw.send_bytes(bytes.data(), bytes.size());
  const std::string response = raw.read_to_eof();
  FrameDecoder decoder;
  decoder.feed(response.data(), response.size());
  Frame frame;
  ASSERT_EQ(decoder.next(frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kError);
}

TEST(NetServer, HttpUnknownPathIs404) {
  AdmissionServerConfig config = loopback_config(16);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(1);
  });
  RawConn raw(server.port());
  const std::string request = "GET /nope HTTP/1.0\r\n\r\n";
  raw.send_bytes(request.data(), request.size());
  const std::string response = raw.read_to_eof();
  EXPECT_NE(response.find("404"), std::string::npos);
}

TEST(NetServer, HttpMetricsServesWhileTrafficFlows) {
  AdmissionServerConfig config = loopback_config(1024);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(2);
  });
  AdmissionClient client("127.0.0.1", server.port());
  for (JobId id = 0; id < 100; ++id) {
    Job job;
    job.id = id;
    job.proc = 1.0;
    job.deadline = 1e9;
    (void)client.submit(job);
  }
  const std::string page = http_get_metrics("127.0.0.1", server.port());
  EXPECT_NE(page.find("# HELP slacksched_shards"), std::string::npos);
  EXPECT_NE(page.find("slacksched_outcomes_total"), std::string::npos);
  for (int i = 0; i < 100; ++i) (void)client.wait_reply();
}

// ---------- retry policy + retrying submitter ----------

TEST(NetClient, RetryPolicyDelayIsDeterministicCappedAndFloored) {
  RetryPolicy policy;
  policy.initial_delay = std::chrono::milliseconds(2);
  policy.factor = 2.0;
  policy.max_delay = std::chrono::milliseconds(50);
  policy.jitter_seed = 42;

  RetryPolicy same = policy;
  for (int attempt = 1; attempt <= 12; ++attempt) {
    const auto d = policy.delay(attempt, 0);
    // Equal seeds replay equal schedules.
    EXPECT_EQ(d.count(), same.delay(attempt, 0).count()) << attempt;
    // Jitter scales into [0.5, 1.0] of the capped exponential.
    EXPECT_GE(d.count(), 1) << attempt;
    EXPECT_LE(d.count(), policy.max_delay.count()) << attempt;
  }
  // A server hint larger than the local schedule becomes the floor.
  EXPECT_GE(policy.delay(1, 200).count(), 200);

  RetryPolicy other = policy;
  other.jitter_seed = 43;
  bool diverged = false;
  for (int attempt = 2; attempt <= 12 && !diverged; ++attempt) {
    diverged = other.delay(attempt, 0) != policy.delay(attempt, 0);
  }
  EXPECT_TRUE(diverged) << "different seeds never diverged";
}

TEST(NetClient, RetryingSubmitterAnswersEveryJobUnderBackpressure) {
  // Same tiny-queue squeeze as EverySubmitIsAnsweredUnderBackpressure,
  // but the library's RetryingSubmitter resubmits the queue-full sheds:
  // the contract tightens to every job ending in a rendered decision.
  AdmissionServerConfig config = loopback_config(8);
  config.gateway.batch_size = 4;
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(2);
  });

  AdmissionClient client("127.0.0.1", server.port());
  RetryPolicy policy;
  policy.max_attempts = 0;  // unlimited
  policy.initial_delay = std::chrono::milliseconds(1);
  policy.max_delay = std::chrono::milliseconds(4);
  RetryingSubmitter submitter(client, policy);

  constexpr std::size_t kJobs = 300;
  std::vector<Job> jobs(kJobs);
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs[i].id = static_cast<JobId>(i);
    jobs[i].release = 0.0;
    jobs[i].proc = 1.0;
    jobs[i].deadline = 1e9;
  }
  // Mix the two enqueue shapes: a pipelined batch frame + singles.
  submitter.enqueue_batch(std::span<const Job>(jobs.data(), kJobs / 2));
  for (std::size_t i = kJobs / 2; i < kJobs; ++i) {
    submitter.enqueue(jobs[i]);
  }

  std::size_t decided = 0;
  DecisionReply reply;
  while (submitter.pump(reply)) {
    EXPECT_TRUE(reply.is_decision())
        << "job " << reply.job_id << " ended as "
        << static_cast<int>(reply.outcome);
    ++decided;
  }
  EXPECT_EQ(decided, kJobs);
  EXPECT_EQ(submitter.in_flight(), 0u);
  const GatewayResult result = server.shutdown();
  EXPECT_EQ(result.merged.submitted, kJobs);
}

// ---------- idle-connection reaping ----------

TEST(NetServer, IdleConnectionsAreReapedActiveOnesSurvive) {
  AdmissionServerConfig config = loopback_config(64);
  config.idle_timeout = std::chrono::milliseconds(100);
  config.reap_interval = std::chrono::milliseconds(20);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(2);
  });

  RawConn idle(server.port());  // connects, then never sends a byte
  AdmissionClient active("127.0.0.1", server.port());

  // Keep the active connection busy well past the idle deadline.
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(400);
  std::uint64_t token = 1;
  while (std::chrono::steady_clock::now() < until) {
    EXPECT_EQ(active.ping(token), token);
    ++token;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  // The reaper closed the idle peer: its read sees EOF without help.
  EXPECT_EQ(idle.read_to_eof(), "");
  EXPECT_GE(server.connections_reaped(), 1u);
  const std::string page = http_get_metrics("127.0.0.1", server.port());
  EXPECT_GE(metric_value(page, "slacksched_connections_reaped_total"), 1.0);

  // The active connection outlived every deadline.
  EXPECT_EQ(active.ping(token), token);
}

TEST(NetServer, ReapingDisabledKeepsIdleConnectionsOpen) {
  AdmissionServerConfig config = loopback_config(64);  // idle_timeout 0
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(2);
  });
  RawConn idle(server.port());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(server.connections_reaped(), 0u);
  // Still serviceable: a PING on the long-idle connection round-trips.
  AdmissionClient probe("127.0.0.1", server.port());
  EXPECT_EQ(probe.ping(7), 7u);
}

// ---------- owed DECISIONs outrank the idle reaper ----------

/// Delegates to an inner scheduler after a wall-clock stall, stretching
/// the submit->DECISION window far past any idle deadline.
class SlowScheduler final : public OnlineScheduler {
 public:
  SlowScheduler(std::unique_ptr<OnlineScheduler> inner,
                std::chrono::milliseconds stall)
      : inner_(std::move(inner)), stall_(stall) {}

  Decision on_arrival(const Job& job) override {
    std::this_thread::sleep_for(stall_);
    return inner_->on_arrival(job);
  }
  [[nodiscard]] int machines() const override { return inner_->machines(); }
  void reset() override { inner_->reset(); }
  [[nodiscard]] std::string name() const override {
    return "slow(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<OnlineScheduler> inner_;
  std::chrono::milliseconds stall_;
};

TEST(NetServer, ReaperNeverDropsAnOwedDecision) {
  // The decision takes ~8 reap ticks to render while the connection's
  // wire stays silent. The pre-fix reaper closed it mid-wait and dropped
  // the owed DECISION; the owed-count exemption must keep it alive until
  // both replies land — every SUBMIT answered exactly once, every seed.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    AdmissionServerConfig config = loopback_config(64);
    config.idle_timeout = std::chrono::milliseconds(30);
    config.reap_interval = std::chrono::milliseconds(10);
    AdmissionServer server(config, [](int) {
      return std::make_unique<SlowScheduler>(
          std::make_unique<GreedyScheduler>(2),
          std::chrono::milliseconds(80));
    });
    AdmissionClient client("127.0.0.1", server.port());
    RawConn idle(server.port());  // control: truly idle, still reapable

    std::vector<std::uint64_t> request_ids;
    for (int i = 0; i < 2; ++i) {
      Job job;
      job.id = static_cast<JobId>(2 * seed + static_cast<std::uint64_t>(i));
      job.proc = 1.0 + static_cast<double>(seed % 5);
      job.deadline = 1e9;
      request_ids.push_back(client.submit(job));
    }
    for (int i = 0; i < 2; ++i) {
      const DecisionReply reply = client.wait_reply();
      EXPECT_EQ(reply.request_id, request_ids[static_cast<std::size_t>(i)]);
      EXPECT_TRUE(reply.is_decision());
    }
    EXPECT_EQ(client.outstanding(), 0u);
    // The exemption is per-owed-connection, not a reaper kill switch: the
    // idle control connection was closed during the same window.
    EXPECT_EQ(idle.read_to_eof(), "");
    EXPECT_GE(server.connections_reaped(), 1u);
  }
}

// ---------- first-write classification ----------

TEST(NetServer, TrickledBinaryFirstByteReachesDecoder) {
  // One byte, then silence: the old sniffer buffered anything under 4
  // bytes without feeding the FrameDecoder, so a client that paused after
  // a short first write hung forever. The first byte of every protocol
  // frame (version = 1) already rules out "GET ".
  AdmissionServerConfig config = loopback_config(16);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(1);
  });
  RawConn raw(server.port());
  std::vector<char> bytes;
  encode_ping(bytes, 0x2a);
  raw.send_bytes(bytes.data(), 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (std::size_t i = 1; i < bytes.size(); ++i) {
    raw.send_bytes(bytes.data() + i, 1);  // keep trickling, byte at a time
  }
  const Frame frame = raw.read_frame();
  ASSERT_EQ(frame.type, FrameType::kPong);
  std::uint64_t token = 0;
  std::string error;
  ASSERT_TRUE(parse_token(frame, token, &error)) << error;
  EXPECT_EQ(token, 0x2au);
}

TEST(NetServer, HttpClassificationSurvivesSplitPrefixWrite) {
  // "G" alone is still a proper prefix of "GET ", so classification must
  // stay open until the request line resolves it.
  AdmissionServerConfig config = loopback_config(16);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(1);
  });
  RawConn raw(server.port());
  raw.send_bytes("G", 1);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::string rest = "ET /metrics HTTP/1.0\r\n\r\n";
  raw.send_bytes(rest.data(), rest.size());
  const std::string response = raw.read_to_eof();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("slacksched_submitted_total"), std::string::npos);
}

// ---------- accept failure handling ----------

std::size_t count_open_fds() {
  DIR* dir = ::opendir("/proc/self/fd");
  SLACKSCHED_EXPECTS(dir != nullptr);
  std::size_t n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n - 3;  // ".", "..", and the directory's own fd
}

TEST(NetServer, FdExhaustionBacksOffCountsAndRecovers) {
  AdmissionServerConfig config = loopback_config(16);
  config.accept_backoff = std::chrono::milliseconds(50);
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(1);
  });

  // The client socket exists before the clamp; its connect() completes in
  // the kernel regardless. Only the server-side accept4 needs a new fd.
  const int probe = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(probe, 0);
  timeval rcv_timeout{5, 0};  // a broken rearm must fail, not hang
  (void)setsockopt(probe, SOL_SOCKET, SO_RCVTIMEO, &rcv_timeout,
                   sizeof(rcv_timeout));

  rlimit original{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &original), 0);
  rlimit clamped = original;
  clamped.rlim_cur = count_open_fds();  // zero headroom: next fd fails
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &clamped), 0);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(probe, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // accept4 hits EMFILE: the error is counted and the listener disarmed
  // (no hot spin — pre-fix this silently burned a core).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server.accept_errors() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(server.accept_errors(), 1u);

  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &original), 0);

  // The connection stayed in the backlog; after accept_backoff the
  // listener rearms and adopts it — the same socket now round-trips.
  std::vector<char> ping;
  encode_ping(ping, 17);
  ASSERT_EQ(::send(probe, ping.data(), ping.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(ping.size()));
  FrameDecoder decoder;
  Frame frame;
  char buf[4096];
  while (decoder.next(frame) != FrameDecoder::Status::kFrame) {
    const ssize_t n = ::recv(probe, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "no PONG after listener rearm";
    decoder.feed(buf, static_cast<std::size_t>(n));
  }
  EXPECT_EQ(frame.type, FrameType::kPong);
  ::close(probe);

  const std::string page = http_get_metrics("127.0.0.1", server.port());
  EXPECT_GE(metric_value(page, "slacksched_accept_errors_total"), 1.0);
}

// ---------- multi-loop front end ----------

TEST(NetServer, MultiLoopDecisionStreamEqualsRunOnline) {
  // One client lands on one loop; with a single shard behind the gateway
  // the ordered bit-identical pin must hold regardless of loop count.
  const Instance instance = test_instance(300, 4242);
  ThresholdScheduler reference(0.1, 4);
  const RunResult engine = run_online(reference, instance, RunOptions{});

  AdmissionServerConfig config = loopback_config(instance.size());
  config.loops = 2;
  AdmissionServer server(config, [](int) {
    return std::make_unique<ThresholdScheduler>(0.1, 4);
  });
  EXPECT_EQ(server.loops(), 2);
  AdmissionClient client("127.0.0.1", server.port());

  std::vector<std::uint64_t> request_ids;
  for (const Job& job : instance.jobs()) {
    request_ids.push_back(client.submit(job));
  }
  ASSERT_EQ(engine.decisions.size(), instance.size());
  for (std::size_t i = 0; i < instance.size(); ++i) {
    const DecisionRecord& expected = engine.decisions[i];
    const DecisionReply got = client.wait_reply();
    EXPECT_EQ(got.request_id, request_ids[i]);
    EXPECT_EQ(got.job_id, expected.job.id);
    ASSERT_TRUE(got.is_decision());
    EXPECT_EQ(got.outcome == Outcome::kAccepted, expected.decision.accepted);
    if (expected.decision.accepted) {
      EXPECT_EQ(got.machine, expected.decision.machine);
      EXPECT_EQ(got.start, expected.decision.start);  // bit-exact doubles
    }
  }
  const DrainedMsg drained = client.drain();
  EXPECT_EQ(drained.submitted, engine.metrics.submitted);
  EXPECT_EQ(drained.accepted, engine.metrics.accepted);
  EXPECT_EQ(drained.makespan, engine.metrics.makespan);
}

void multi_loop_every_submit_answered(bool so_reuseport) {
  AdmissionServerConfig config = loopback_config(8);
  config.gateway.batch_size = 4;
  config.loops = 4;
  config.so_reuseport = so_reuseport;
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(2);
  });
  EXPECT_EQ(server.using_reuseport(), so_reuseport);

  constexpr int kClients = 8;
  constexpr int kJobsPerClient = 200;
  std::vector<std::size_t> answered(kClients, 0);
  std::vector<std::size_t> decided(kClients, 0);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      AdmissionClient client("127.0.0.1", server.port());
      for (int i = 0; i < kJobsPerClient; ++i) {
        const JobId id = c * kJobsPerClient + i;
        Job job;
        job.id = id;
        job.proc = 1.0;
        job.deadline = 1e9;
        (void)client.submit(job);
        const DecisionReply reply = client.wait_reply();
        EXPECT_EQ(reply.job_id, id);
        ++answered[static_cast<std::size_t>(c)];
        if (reply.is_decision()) ++decided[static_cast<std::size_t>(c)];
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::size_t total_decided = 0;
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(answered[static_cast<std::size_t>(c)],
              static_cast<std::size_t>(kJobsPerClient));
    total_decided += decided[static_cast<std::size_t>(c)];
  }
  const GatewayResult result = server.shutdown();
  EXPECT_EQ(result.merged.submitted, total_decided);
}

TEST(NetServer, MultiLoopAnswersEverySubmitReuseport) {
  multi_loop_every_submit_answered(true);
}

TEST(NetServer, MultiLoopAnswersEverySubmitHandoff) {
  multi_loop_every_submit_answered(false);
}

TEST(NetServer, DrainPropagatesAcrossLoops) {
  // Handoff mode hands connections out round-robin, so three sequential
  // connects land on three different loops. A DRAIN on one loop must
  // close the gateway for all of them.
  AdmissionServerConfig config = loopback_config(64);
  config.loops = 3;
  config.so_reuseport = false;
  AdmissionServer server(config, [](int) {
    return std::make_unique<GreedyScheduler>(2);
  });
  EXPECT_FALSE(server.using_reuseport());

  AdmissionClient a("127.0.0.1", server.port());
  Job job;
  job.id = 1;
  job.proc = 1.0;
  job.deadline = 100.0;
  EXPECT_TRUE(a.submit_wait(job).is_decision());

  AdmissionClient b("127.0.0.1", server.port());
  const DrainedMsg drained = b.drain();
  EXPECT_EQ(drained.submitted, 1u);
  EXPECT_TRUE(server.drained());

  job.id = 2;
  EXPECT_EQ(a.submit_wait(job).outcome, Outcome::kRejectedClosed);
  AdmissionClient c("127.0.0.1", server.port());
  EXPECT_EQ(c.ping(11), 11u);
}

}  // namespace
}  // namespace slacksched::net
