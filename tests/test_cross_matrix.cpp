// The full compatibility matrix: every immediate-commitment scheduler x
// every workload scenario x machine counts, each cell asserting the three
// universal invariants — clean commitments, validated schedules, and
// accepted volume below the fractional upper bound — plus run-to-run
// determinism. This is the regression net that keeps new algorithms and
// new generators compatible with the whole harness.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/greedy.hpp"
#include "baselines/random_admission.hpp"
#include "core/adaptive.hpp"
#include "core/classify_select.hpp"
#include "core/threshold.hpp"
#include "offline/upper_bound.hpp"
#include "sched/engine.hpp"
#include "sched/validator.hpp"
#include "workload/generators.hpp"

namespace slacksched {
namespace {

enum class AlgKind {
  kThreshold,
  kThresholdKOverride,
  kGreedyBestFit,
  kGreedyFirstFit,
  kGreedyLeastLoaded,
  kClassifySelect,  // forces m = 1
  kRandomAdmission,
  kAdaptive,
};

std::string to_string(AlgKind kind) {
  switch (kind) {
    case AlgKind::kThreshold:
      return "threshold";
    case AlgKind::kThresholdKOverride:
      return "threshold-k1";
    case AlgKind::kGreedyBestFit:
      return "greedy-bf";
    case AlgKind::kGreedyFirstFit:
      return "greedy-ff";
    case AlgKind::kGreedyLeastLoaded:
      return "greedy-ll";
    case AlgKind::kClassifySelect:
      return "classify-select";
    case AlgKind::kRandomAdmission:
      return "random";
    case AlgKind::kAdaptive:
      return "adaptive";
  }
  return "?";
}

std::unique_ptr<OnlineScheduler> make(AlgKind kind, double eps, int m) {
  switch (kind) {
    case AlgKind::kThreshold:
      return std::make_unique<ThresholdScheduler>(eps, m);
    case AlgKind::kThresholdKOverride: {
      ThresholdConfig config;
      config.eps = eps;
      config.machines = m;
      config.k_override = 1;
      return std::make_unique<ThresholdScheduler>(config);
    }
    case AlgKind::kGreedyBestFit:
      return std::make_unique<GreedyScheduler>(m, GreedyPolicy::kBestFit);
    case AlgKind::kGreedyFirstFit:
      return std::make_unique<GreedyScheduler>(m, GreedyPolicy::kFirstFit);
    case AlgKind::kGreedyLeastLoaded:
      return std::make_unique<GreedyScheduler>(m,
                                               GreedyPolicy::kLeastLoaded);
    case AlgKind::kClassifySelect: {
      ClassifySelectConfig config;
      config.eps = eps;
      config.seed = 99;
      return std::make_unique<ClassifySelectScheduler>(config);
    }
    case AlgKind::kRandomAdmission:
      return std::make_unique<RandomAdmissionScheduler>(m, 0.6, 7);
    case AlgKind::kAdaptive:
      return make_adaptive_scheduler(eps, m);
  }
  return nullptr;
}

enum class ScenarioKind { kCloudBurst, kOverload, kDiurnalMix };

std::string to_string(ScenarioKind kind) {
  switch (kind) {
    case ScenarioKind::kCloudBurst:
      return "cloud-burst";
    case ScenarioKind::kOverload:
      return "overload";
    case ScenarioKind::kDiurnalMix:
      return "diurnal-mix";
  }
  return "?";
}

Instance make_instance(ScenarioKind kind, double eps) {
  switch (kind) {
    case ScenarioKind::kCloudBurst: {
      WorkloadConfig config = scenario("cloud-burst", eps, 1234);
      config.n = 400;
      return generate_workload(config);
    }
    case ScenarioKind::kOverload: {
      WorkloadConfig config = scenario("overload", eps, 1234);
      config.n = 400;
      return generate_workload(config);
    }
    case ScenarioKind::kDiurnalMix: {
      WorkloadConfig config;
      config.n = 400;
      config.eps = eps;
      config.arrival = ArrivalModel::kDiurnal;
      config.arrival_rate = 3.0;
      config.diurnal_period = 80.0;
      config.diurnal_amplitude = 0.7;
      config.size = SizeModel::kBimodal;
      config.slack = SlackModel::kMixed;
      config.seed = 1234;
      return generate_workload(config);
    }
  }
  return Instance{};
}

class CrossMatrix
    : public ::testing::TestWithParam<
          std::tuple<AlgKind, ScenarioKind, double, int>> {};

TEST_P(CrossMatrix, UniversalInvariantsHold) {
  const auto [kind, scenario, eps, machines] = GetParam();
  const int m = kind == AlgKind::kClassifySelect ? 1 : machines;
  const Instance instance = make_instance(scenario, eps);
  const auto scheduler = make(kind, eps, m);
  ASSERT_NE(scheduler, nullptr);

  const RunResult first = run_online(*scheduler, instance);
  EXPECT_TRUE(first.clean())
      << to_string(kind) << "/" << to_string(scenario) << ": "
      << first.commitment_violation;
  const auto report = validate_schedule(instance, first.schedule);
  EXPECT_TRUE(report.ok) << to_string(kind) << ": " << report.to_string();
  EXPECT_LE(first.metrics.accepted_volume,
            preemptive_fractional_upper_bound(instance, m) + 1e-6);

  // Determinism: a second run through the same object is identical.
  const RunResult second = run_online(*scheduler, instance);
  EXPECT_DOUBLE_EQ(second.metrics.accepted_volume,
                   first.metrics.accepted_volume);
  ASSERT_EQ(second.decisions.size(), first.decisions.size());
  for (std::size_t i = 0; i < first.decisions.size(); ++i) {
    EXPECT_EQ(second.decisions[i].decision, first.decisions[i].decision)
        << to_string(kind) << " decision " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CrossMatrix,
    ::testing::Combine(
        ::testing::Values(AlgKind::kThreshold, AlgKind::kThresholdKOverride,
                          AlgKind::kGreedyBestFit, AlgKind::kGreedyFirstFit,
                          AlgKind::kGreedyLeastLoaded,
                          AlgKind::kClassifySelect,
                          AlgKind::kRandomAdmission, AlgKind::kAdaptive),
        ::testing::Values(ScenarioKind::kCloudBurst, ScenarioKind::kOverload,
                          ScenarioKind::kDiurnalMix),
        ::testing::Values(0.05, 0.5), ::testing::Values(1, 3)));

}  // namespace
}  // namespace slacksched
