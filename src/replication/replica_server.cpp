#include "replication/replica_server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/expects.hpp"
#include "common/wire.hpp"
#include "service/commit_log.hpp"

namespace slacksched::repl {

namespace {

using Clock = std::chrono::steady_clock;

/// Structural scan of a WAL body: counts whole, CRC-valid records from
/// `offset` and reports where the clean prefix ends. Purely framing-level
/// — semantic validation (legality of the commitments) happens once, at
/// promotion, through recover_commit_log.
struct ScanResult {
  std::uint64_t records = 0;
  off_t clean_end = 0;
  bool torn = false;
};

ScanResult scan_records(int fd, off_t file_size) {
  ScanResult scan;
  scan.clean_end = static_cast<off_t>(kWalHeaderBytes);
  char record[kWalRecordBytes];
  while (scan.clean_end + static_cast<off_t>(kWalRecordBytes) <= file_size) {
    if (::pread(fd, record, kWalRecordBytes, scan.clean_end) !=
        static_cast<ssize_t>(kWalRecordBytes)) {
      scan.torn = true;
      return scan;
    }
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, record, sizeof(len));
    std::memcpy(&crc, record + 4, sizeof(crc));
    if (len != kWalPayloadBytes ||
        wal_crc32(record + kWalFrameBytes, kWalPayloadBytes) != crc) {
      scan.torn = true;
      return scan;
    }
    ++scan.records;
    scan.clean_end += static_cast<off_t>(kWalRecordBytes);
  }
  scan.torn = scan.clean_end != file_size;
  return scan;
}

/// True iff every record in an APPEND body passes its frame check.
bool records_well_formed(const char* records, std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    const char* record = records + static_cast<std::size_t>(i) * kWalRecordBytes;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, record, sizeof(len));
    std::memcpy(&crc, record + 4, sizeof(crc));
    if (len != kWalPayloadBytes ||
        wal_crc32(record + kWalFrameBytes, kWalPayloadBytes) != crc) {
      return false;
    }
  }
  return true;
}

bool write_fully(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

ReplicaServer::ReplicaServer(ReplicaServerConfig config)
    : config_(std::move(config)) {
  SLACKSCHED_EXPECTS(config_.shards >= 1);
  SLACKSCHED_EXPECTS(!config_.dir.empty());
  states_.reserve(static_cast<std::size_t>(config_.shards));
  for (int s = 0; s < config_.shards; ++s) {
    states_.push_back(std::make_unique<ShardState>());
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw ReplError(std::string("replica socket: ") + std::strerror(errno));
  }
  int one = 1;
  (void)setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    throw ReplError("bad replica bind address: " + config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    throw ReplError("replica bind/listen " + config_.bind_address + ":" +
                    std::to_string(config_.port) + ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    throw ReplError(std::string("replica getsockname: ") +
                    std::strerror(err));
  }
  port_ = ntohs(bound.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

ReplicaServer::~ReplicaServer() { stop(); }

void ReplicaServer::stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    std::lock_guard lock(conn_mutex_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> handlers;
  {
    std::lock_guard lock(conn_mutex_);
    handlers.swap(handlers_);
  }
  for (std::thread& handler : handlers) {
    if (handler.joinable()) handler.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (const auto& state : states_) {
    std::lock_guard lock(state->mutex);
    if (state->fd >= 0) {
      ::close(state->fd);
      state->fd = -1;
    }
  }
}

std::uint64_t ReplicaServer::watermark(int shard) const {
  SLACKSCHED_EXPECTS(shard >= 0 && shard < config_.shards);
  return states_[static_cast<std::size_t>(shard)]->records.load(
      std::memory_order_acquire);
}

bool ReplicaServer::attached(int shard) const {
  SLACKSCHED_EXPECTS(shard >= 0 && shard < config_.shards);
  return states_[static_cast<std::size_t>(shard)]->attached.load(
      std::memory_order_acquire);
}

std::chrono::steady_clock::duration ReplicaServer::last_activity_age() const {
  const std::int64_t ns = last_activity_ns_.load(std::memory_order_acquire);
  if (ns == 0) return Clock::duration::max();
  return Clock::now().time_since_epoch() - std::chrono::nanoseconds(ns);
}

std::string ReplicaServer::shard_log_path(int shard) const {
  return config_.dir + "/shard-" + std::to_string(shard) + ".wal";
}

void ReplicaServer::touch_activity() {
  last_activity_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count(),
      std::memory_order_release);
}

void ReplicaServer::send_frame(int fd, const std::vector<char>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return;  // peer gone; the read loop notices and closes
  }
}

void ReplicaServer::accept_loop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;
    int one = 1;
    (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard lock(conn_mutex_);
    if (stop_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    conn_fds_.push_back(fd);
    handlers_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void ReplicaServer::handle_connection(int fd) {
  ReplFrameDecoder decoder;
  std::unordered_map<int, std::uint64_t> epochs;
  char buf[65536];
  bool open = true;
  while (open && !stop_.load(std::memory_order_acquire)) {
    ReplFrame frame;
    const ReplFrameDecoder::Status status = decoder.next(frame);
    if (status == ReplFrameDecoder::Status::kFrame) {
      open = handle_frame(fd, frame, epochs);
      continue;
    }
    if (status == ReplFrameDecoder::Status::kError) break;
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // closed or errored; a partial frame in the decoder is
            // discarded — torn stream, nothing persisted from it
  }
  // Detach every shard this connection still owns.
  for (const auto& [shard, epoch] : epochs) {
    ShardState& state = *states_[static_cast<std::size_t>(shard)];
    std::lock_guard lock(state.mutex);
    if (state.epoch == epoch) {
      state.attached.store(false, std::memory_order_release);
    }
  }
  ::close(fd);
  std::lock_guard lock(conn_mutex_);
  for (auto it = conn_fds_.begin(); it != conn_fds_.end(); ++it) {
    if (*it == fd) {
      conn_fds_.erase(it);
      break;
    }
  }
}

bool ReplicaServer::open_shard_log(ShardState& state, int shard,
                                   std::uint32_t machines, std::string* why) {
  const std::string path = shard_log_path(shard);
  if (state.fd < 0) {
    state.fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (state.fd < 0) {
      *why = "cannot open replica log " + path + ": " + std::strerror(errno);
      return false;
    }
  }
  const off_t size = ::lseek(state.fd, 0, SEEK_END);
  if (size < 0) {
    *why = "cannot seek replica log " + path + ": " + std::strerror(errno);
    return false;
  }
  if (static_cast<std::size_t>(size) < kWalHeaderBytes) {
    // Fresh (or torn-inside-the-header) log: write a clean header carrying
    // the leader's machine count — byte-identical to CommitLog::open's.
    if (::ftruncate(state.fd, 0) != 0) {
      *why = "cannot reset replica log " + path + ": " + std::strerror(errno);
      return false;
    }
    std::vector<char> header;
    header.insert(header.end(), kWalMagic, kWalMagic + sizeof(kWalMagic));
    wire::put(header, kWalVersion);
    wire::put(header, machines);
    if (::lseek(state.fd, 0, SEEK_SET) != 0 ||
        !write_fully(state.fd, header.data(), header.size())) {
      *why = "cannot write replica log header " + path;
      return false;
    }
    state.records.store(0, std::memory_order_release);
    return true;
  }
  char header[kWalHeaderBytes];
  if (::pread(state.fd, header, sizeof(header), 0) !=
      static_cast<ssize_t>(sizeof(header))) {
    *why = "cannot read replica log header " + path;
    return false;
  }
  if (std::memcmp(header, kWalMagic, sizeof(kWalMagic)) != 0) {
    *why = path + ": not a commit log (bad magic)";
    return false;
  }
  std::uint32_t version = 0;
  std::uint32_t header_machines = 0;
  std::memcpy(&version, header + 8, sizeof(version));
  std::memcpy(&header_machines, header + 12, sizeof(header_machines));
  if (version != kWalVersion) {
    *why = path + ": unsupported commit log version " +
           std::to_string(version);
    return false;
  }
  if (header_machines != machines) {
    *why = path + ": replica log is for " + std::to_string(header_machines) +
           " machines, leader has " + std::to_string(machines);
    return false;
  }
  const ScanResult scan = scan_records(state.fd, size);
  if (scan.torn && ::ftruncate(state.fd, scan.clean_end) != 0) {
    *why = "cannot truncate torn replica tail " + path + ": " +
           std::strerror(errno);
    return false;
  }
  if (::lseek(state.fd, scan.clean_end, SEEK_SET) != scan.clean_end) {
    *why = "cannot seek replica log tail " + path;
    return false;
  }
  state.records.store(scan.records, std::memory_order_release);
  return true;
}

bool ReplicaServer::handle_frame(
    int fd, const ReplFrame& frame,
    std::unordered_map<int, std::uint64_t>& epochs) {
  const int shard = static_cast<int>(frame.shard);
  std::vector<char> reply;
  if (shard < 0 || shard >= config_.shards) {
    encode_nack(reply, frame.shard, NackReason::kBadState, 0,
                "replica serves " + std::to_string(config_.shards) +
                    " shards, frame names shard " + std::to_string(shard));
    send_frame(fd, reply);
    return false;
  }
  ShardState& state = *states_[static_cast<std::size_t>(shard)];
  std::string error;

  if (frame.type == ReplFrameType::kHello) {
    HelloMsg hello;
    if (!parse_hello(frame, hello, &error)) {
      encode_nack(reply, frame.shard, NackReason::kBadState, 0, error);
      send_frame(fd, reply);
      return false;
    }
    std::lock_guard lock(state.mutex);
    std::string why;
    if (!open_shard_log(state, shard, hello.machines, &why)) {
      encode_nack(reply, frame.shard, NackReason::kBadState, 0, why);
      send_frame(fd, reply);
      return false;
    }
    const std::uint64_t have = state.records.load(std::memory_order_relaxed);
    if (hello.leader_records < have) {
      // Stale leader: it lost records this replica still holds. Refusing
      // here is what keeps a recovered-but-behind leader from serving —
      // and from ever truncating the survivor's history.
      encode_nack(reply, frame.shard, NackReason::kStaleLeader, have,
                  "leader announces " +
                      std::to_string(hello.leader_records) +
                      " records, replica holds " + std::to_string(have));
      send_frame(fd, reply);
      return false;
    }
    // Newest session wins the shard; a superseded one finds its epoch
    // stale on its next frame and bows out.
    state.epoch += 1;
    epochs[shard] = state.epoch;
    state.attached.store(true, std::memory_order_release);
    sessions_.fetch_add(1, std::memory_order_relaxed);
    touch_activity();
    encode_welcome(reply, frame.shard, have);
    send_frame(fd, reply);
    return true;
  }

  // Every other frame requires an owned session on the shard.
  const auto it = epochs.find(shard);
  if (it == epochs.end()) {
    encode_nack(reply, frame.shard, NackReason::kBadState, 0,
                "no session: HELLO first");
    send_frame(fd, reply);
    return false;
  }

  if (frame.type == ReplFrameType::kAppend) {
    std::uint64_t base_seq = 0;
    std::uint32_t count = 0;
    const char* records = nullptr;
    if (!parse_append(frame, base_seq, count, &records, &error)) {
      encode_nack(reply, frame.shard, NackReason::kBadState, 0, error);
      send_frame(fd, reply);
      return false;
    }
    std::lock_guard lock(state.mutex);
    if (state.epoch != it->second) return false;  // superseded
    const std::uint64_t have = state.records.load(std::memory_order_relaxed);
    if (base_seq != have) {
      encode_nack(reply, frame.shard, NackReason::kSequenceGap, have,
                  "APPEND base " + std::to_string(base_seq) +
                      ", replica expects " + std::to_string(have));
      send_frame(fd, reply);
      return false;
    }
    if (!records_well_formed(records, count)) {
      // All-or-nothing: one bad record quarantines the whole frame, so a
      // valid prefix never mixes with corruption on disk.
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      encode_nack(reply, frame.shard, NackReason::kCorruptRecord, have,
                  "a record in the APPEND failed its CRC frame check");
      send_frame(fd, reply);
      return false;
    }
    const std::size_t bytes =
        static_cast<std::size_t>(count) * kWalRecordBytes;
    if (!write_fully(state.fd, records, bytes) || ::fsync(state.fd) != 0) {
      encode_nack(reply, frame.shard, NackReason::kBadState, have,
                  "replica log write failed: " +
                      std::string(std::strerror(errno)));
      send_frame(fd, reply);
      return false;
    }
    const std::uint64_t now_have = have + count;
    state.records.store(now_have, std::memory_order_release);
    touch_activity();
    encode_ack(reply, frame.shard, now_have);
    send_frame(fd, reply);
    return true;
  }

  if (frame.type == ReplFrameType::kHeartbeat) {
    std::lock_guard lock(state.mutex);
    if (state.epoch != it->second) return false;  // superseded
    touch_activity();
    encode_heartbeat_ack(reply, frame.shard,
                         state.records.load(std::memory_order_relaxed));
    send_frame(fd, reply);
    return true;
  }

  encode_nack(reply, frame.shard, NackReason::kBadState, 0,
              "unexpected frame type " +
                  std::to_string(static_cast<int>(frame.type)));
  send_frame(fd, reply);
  return false;
}

}  // namespace slacksched::repl
