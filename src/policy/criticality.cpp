#include "policy/criticality.hpp"

namespace slacksched {

std::string_view criticality_label(Criticality criticality) {
  switch (criticality) {
    case Criticality::kBackground: return "background";
    case Criticality::kStandard: return "standard";
    case Criticality::kElevated: return "elevated";
    case Criticality::kCritical: return "critical";
  }
  return "unknown";
}

std::optional<Criticality> criticality_from_label(std::string_view label) {
  for (std::uint8_t v = 0; v < kCriticalityCount; ++v) {
    const auto criticality = static_cast<Criticality>(v);
    if (label == criticality_label(criticality)) return criticality;
  }
  return std::nullopt;
}

std::string to_string(Criticality criticality) {
  return std::string(criticality_label(criticality));
}

}  // namespace slacksched
