// Torture and differential suite for the lock-free bounded MPSC ring
// (service/bounded_queue.hpp). The concurrent tests here are the ones the
// TSan CI matrix runs against the queue: multi-producer close/drain races,
// batch-claim wraparound at the smallest legal capacities, and the
// close-racing-a-timed-wait drain contract. The retired mutex+condvar
// queue (service/bounded_queue_reference.hpp) serves as the differential
// oracle: identical operation sequences must produce identical return
// values and identical delivered streams.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "service/bounded_queue.hpp"
#include "service/bounded_queue_reference.hpp"

namespace slacksched {
namespace {

// ---------- construction ----------

TEST(BoundedQueue, RejectsNonPowerOfTwoCapacity) {
  // The ring indexes slots with a mask; silently rounding an operator's
  // bound up would skew shed-rate math, so odd capacities fail loudly.
  EXPECT_THROW(BoundedMpscQueue<int>(0), PreconditionError);
  EXPECT_THROW(BoundedMpscQueue<int>(3), PreconditionError);
  EXPECT_THROW(BoundedMpscQueue<int>(6), PreconditionError);
  EXPECT_THROW(BoundedMpscQueue<int>(3000), PreconditionError);
  EXPECT_NO_THROW(BoundedMpscQueue<int>(1));
  EXPECT_NO_THROW(BoundedMpscQueue<int>(2));
  EXPECT_NO_THROW(BoundedMpscQueue<int>(4096));
}

// ---------- single-threaded semantics ----------

TEST(BoundedQueue, RefusesWhenFull) {
  BoundedMpscQueue<int> q(4);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.try_push(4));
  EXPECT_FALSE(q.try_push(5));  // full: backpressure, not blocking
  EXPECT_EQ(q.size(), 4u);
}

TEST(BoundedQueue, PopBatchIsFifo) {
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.pop_batch(out, 10), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(BoundedQueue, WrapsAroundTheRing) {
  BoundedMpscQueue<int> q(4);
  std::vector<int> out;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(q.try_push(2 * round));
    EXPECT_TRUE(q.try_push(2 * round + 1));
    out.clear();
    EXPECT_EQ(q.pop_batch(out, 4), 2u);
    EXPECT_EQ(out, (std::vector<int>{2 * round, 2 * round + 1}));
  }
}

TEST(BoundedQueue, CloseDrainsThenSignalsExit) {
  BoundedMpscQueue<int> q(4);
  EXPECT_TRUE(q.try_push(7));
  q.close();
  EXPECT_FALSE(q.try_push(8));  // closed refuses new work
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4), 1u);  // backlog still drains
  EXPECT_EQ(q.pop_batch(out, 4), 0u);  // then the exit signal
}

TEST(BoundedQueue, TryPushBatchTakesWhatFits) {
  BoundedMpscQueue<int> q(4);
  std::vector<int> items{1, 2, 3, 4, 5, 6};
  EXPECT_EQ(q.try_push_batch(items.data(), items.size()), 4u);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 6), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
}

TEST(BoundedQueue, TryPushBatchWithConstructsInPlace) {
  // The zero-copy writer builds each item directly in its claimed cell:
  // the value observed by the consumer is whatever the writer produced,
  // with no staging buffer in between.
  BoundedMpscQueue<int> q(8);
  bool closed = true;
  const std::size_t taken = q.try_push_batch_with(
      5, &closed, [](std::size_t i, int& slot) {
        slot = static_cast<int>(100 + i);
      });
  EXPECT_EQ(taken, 5u);
  EXPECT_FALSE(closed);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 8), 5u);
  EXPECT_EQ(out, (std::vector<int>{100, 101, 102, 103, 104}));

  q.close();
  EXPECT_EQ(q.try_push_batch_with(1, &closed,
                                  [](std::size_t, int& slot) { slot = 0; }),
            0u);
  EXPECT_TRUE(closed);
}

TEST(BoundedQueue, PopBlocksUntilPush) {
  BoundedMpscQueue<int> q(2);
  std::vector<int> out;
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(q.try_push(42));
  });
  EXPECT_EQ(q.pop_batch(out, 1), 1u);  // waits for the producer
  EXPECT_EQ(out, (std::vector<int>{42}));
  producer.join();
}

// ---------- timed pop, reopen ----------

TEST(BoundedQueue, PopBatchForTimesOutOnAnIdleQueue) {
  BoundedMpscQueue<int> q(4);
  std::vector<int> out;
  const PopOutcome idle = q.pop_batch_for(out, 4, std::chrono::milliseconds(5));
  EXPECT_EQ(idle.count, 0u);
  EXPECT_FALSE(idle.closed);  // timed out, not shut down

  ASSERT_TRUE(q.try_push(9));
  const PopOutcome hit = q.pop_batch_for(out, 4, std::chrono::milliseconds(5));
  EXPECT_EQ(hit.count, 1u);
  EXPECT_FALSE(hit.closed);
  EXPECT_EQ(out, (std::vector<int>{9}));

  q.close();
  const PopOutcome done = q.pop_batch_for(out, 4, std::chrono::milliseconds(5));
  EXPECT_EQ(done.count, 0u);
  EXPECT_TRUE(done.closed);  // closed-and-drained: the exit signal
}

TEST(BoundedQueue, PopBatchForWakesWhenAProducerArrives) {
  BoundedMpscQueue<int> q(2);
  std::thread producer([&q] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(q.try_push(42));
  });
  std::vector<int> out;
  // Generous timeout: the wait must end on the push, not the deadline.
  const PopOutcome got = q.pop_batch_for(out, 1, std::chrono::seconds(10));
  EXPECT_EQ(got.count, 1u);
  EXPECT_EQ(out, (std::vector<int>{42}));
  producer.join();
}

TEST(BoundedQueue, RawPointerPopMatchesVectorOverload) {
  // The arena-backed consumer loop uses the raw-pointer overload; it must
  // deliver the same stream with the same outcome semantics.
  BoundedMpscQueue<int> q(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(i));
  int buffer[8] = {};
  const PopOutcome first =
      q.pop_batch_for(buffer, 4, std::chrono::milliseconds(5));
  EXPECT_EQ(first.count, 4u);
  EXPECT_FALSE(first.closed);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(buffer[i], i);
  q.close();
  const PopOutcome rest =
      q.pop_batch_for(buffer, 8, std::chrono::milliseconds(5));
  EXPECT_EQ(rest.count, 2u);
  EXPECT_FALSE(rest.closed);  // items delivered this call: not the signal
  EXPECT_EQ(buffer[0], 4);
  EXPECT_EQ(buffer[1], 5);
  const PopOutcome done =
      q.pop_batch_for(buffer, 8, std::chrono::milliseconds(5));
  EXPECT_EQ(done.count, 0u);
  EXPECT_TRUE(done.closed);
}

TEST(BoundedQueue, TryPushBatchReportsClosedDistinctFromFull) {
  BoundedMpscQueue<int> q(2);
  std::vector<int> items{1, 2, 3};
  bool closed = true;
  EXPECT_EQ(q.try_push_batch(items.data(), items.size(), &closed), 2u);
  EXPECT_FALSE(closed);  // tail shed because full
  q.close();
  EXPECT_EQ(q.try_push_batch(items.data(), items.size(), &closed), 0u);
  EXPECT_TRUE(closed);  // tail shed because closed
}

TEST(BoundedQueue, ReopenAcceptsNewWorkAndKeepsTheBacklog) {
  BoundedMpscQueue<int> q(4);
  ASSERT_TRUE(q.try_push(1));
  q.close();
  EXPECT_FALSE(q.try_push(2));
  q.reopen();
  EXPECT_FALSE(q.closed());
  EXPECT_TRUE(q.try_push(2));  // accepted again
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 4), 2u);
  EXPECT_EQ(out, (std::vector<int>{1, 2}));  // backlog survived the cycle
}

// ---------- wraparound torture at the smallest capacities ----------

TEST(BoundedQueue, CapacityOneWrapsThroughManyLaps) {
  // Capacity 1 exercises the per-cell lap arithmetic hardest: every push
  // reuses the same cell, so a stale seq from lap k must never satisfy the
  // consumer's check for lap k+1.
  BoundedMpscQueue<int> q(1);
  EXPECT_EQ(q.capacity(), 1u);
  std::vector<int> out;
  for (int lap = 0; lap < 1000; ++lap) {
    EXPECT_TRUE(q.try_push(lap));
    EXPECT_FALSE(q.try_push(lap + 1000000));  // full at one item
    out.clear();
    EXPECT_EQ(q.pop_batch(out, 4), 1u);
    EXPECT_EQ(out, (std::vector<int>{lap}));
  }
}

TEST(BoundedQueue, CapacityOneConcurrentHandoff) {
  // One producer, one consumer, capacity 1: pure ping-pong through a
  // single cell. Order and exactly-once delivery must survive.
  constexpr int kItems = 20000;
  BoundedMpscQueue<int> q(1);
  std::thread producer([&q] {
    for (int i = 0; i < kItems; ++i) {
      while (!q.try_push(i)) std::this_thread::yield();
    }
    q.close();
  });
  std::vector<int> delivered;
  delivered.reserve(kItems);
  std::vector<int> batch;
  while (true) {
    batch.clear();
    const PopOutcome popped =
        q.pop_batch_for(batch, 8, std::chrono::milliseconds(50));
    delivered.insert(delivered.end(), batch.begin(), batch.end());
    if (popped.closed) break;
  }
  producer.join();
  ASSERT_EQ(delivered.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(delivered[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueue, CapacityTwoMultiProducerWraparound) {
  // Two racing producers against a two-slot ring: batch claims constantly
  // straddle the wrap boundary. Each producer's stream must stay in order
  // (MPSC guarantees per-producer FIFO) and arrive exactly once.
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 10000;
  BoundedMpscQueue<std::uint32_t> q(2);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const auto value = static_cast<std::uint32_t>(
            (static_cast<std::uint32_t>(p) << 24) |
            static_cast<std::uint32_t>(i));
        while (!q.try_push(value)) std::this_thread::yield();
      }
    });
  }
  std::vector<std::uint32_t> delivered;
  delivered.reserve(kProducers * kPerProducer);
  std::vector<std::uint32_t> batch;
  while (delivered.size() <
         static_cast<std::size_t>(kProducers) * kPerProducer) {
    batch.clear();
    (void)q.pop_batch_for(batch, 2, std::chrono::milliseconds(50));
    delivered.insert(delivered.end(), batch.begin(), batch.end());
  }
  for (auto& t : producers) t.join();

  std::vector<std::uint32_t> next(kProducers, 0);
  for (const std::uint32_t value : delivered) {
    const std::size_t p = value >> 24;
    const std::uint32_t seq = value & 0xFFFFFFu;
    ASSERT_LT(p, static_cast<std::size_t>(kProducers));
    EXPECT_EQ(seq, next[p]) << "producer " << p << " stream out of order";
    next[p] = seq + 1;
  }
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next[static_cast<std::size_t>(p)],
              static_cast<std::uint32_t>(kPerProducer));
  }
}

// ---------- close/drain races ----------

TEST(BoundedQueue, CloseDrainTortureDeliversEveryAcceptedItemExactlyOnce) {
  // Racing producers push unique values while the queue is closed midway;
  // the consumer must deliver exactly the accepted set, each value once,
  // and the exit signal must fire exactly when the backlog is drained.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  BoundedMpscQueue<int> q(64);

  std::vector<std::vector<int>> accepted(kProducers);
  std::atomic<int> running{kProducers};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int value = p * kPerProducer + i;
        if (q.try_push(value)) {
          accepted[static_cast<std::size_t>(p)].push_back(value);
        } else if (q.closed()) {
          break;  // shard gone: a real producer stops submitting
        }
        // On a full queue: drop and continue (backpressure shed).
      }
      running.fetch_sub(1, std::memory_order_acq_rel);
    });
  }

  std::vector<int> delivered;
  std::vector<int> batch;
  std::size_t wakeups = 0;
  while (true) {
    batch.clear();
    const PopOutcome popped =
        q.pop_batch_for(batch, 32, std::chrono::milliseconds(2));
    ++wakeups;
    delivered.insert(delivered.end(), batch.begin(), batch.end());
    if (popped.closed) break;
    // Close midway: some producers are still pushing when the shutter falls.
    if (wakeups == 50) q.close();
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(running.load(), 0);
  EXPECT_TRUE(q.closed());

  std::vector<int> pushed;
  for (const auto& per_producer : accepted) {
    pushed.insert(pushed.end(), per_producer.begin(), per_producer.end());
  }
  std::sort(pushed.begin(), pushed.end());
  std::sort(delivered.begin(), delivered.end());
  EXPECT_EQ(delivered, pushed);  // every accepted item, exactly once
  EXPECT_TRUE(std::adjacent_find(delivered.begin(), delivered.end()) ==
              delivered.end());
}

TEST(BoundedQueue, CloseRacingTimedWaitReportsClosedOnlyAfterFullDrain) {
  // The satellite contract: when close() races a pop_batch_for wait, the
  // consumer may time out, may deliver items, but may report closed only
  // once *every* accepted item — including ones whose claim won the race
  // against close() but published late — has been delivered. Repeat many
  // rounds so the close lands at many different phases of the wait.
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    BoundedMpscQueue<int> q(8);
    std::atomic<int> accepted_count{0};
    std::thread producer([&] {
      for (int i = 0; i < 64; ++i) {
        if (q.try_push(i)) {
          accepted_count.fetch_add(1, std::memory_order_relaxed);
        } else if (q.closed()) {
          break;
        }
      }
    });
    std::thread closer([&q, round] {
      // Vary the close phase: sometimes immediate, sometimes mid-drain.
      if (round % 3 != 0) std::this_thread::yield();
      q.close();
    });

    std::vector<int> delivered;
    std::vector<int> batch;
    while (true) {
      batch.clear();
      const PopOutcome popped =
          q.pop_batch_for(batch, 4, std::chrono::milliseconds(1));
      delivered.insert(delivered.end(), batch.begin(), batch.end());
      if (popped.closed) {
        // Closed was reported: the ring must be fully drained *at this
        // moment* — nothing accepted may still be buffered.
        EXPECT_EQ(q.size(), 0u);
        EXPECT_EQ(popped.count, 0u);
        break;
      }
    }
    producer.join();
    closer.join();
    // Every item whose try_push returned true was delivered: the closed
    // signal never ate an accepted item.
    EXPECT_EQ(delivered.size(),
              static_cast<std::size_t>(
                  accepted_count.load(std::memory_order_relaxed)))
        << "round " << round;
  }
}

// ---------- differential: lock-free ring vs mutex oracle ----------

// Replays one seeded operation stream through both queues, asserting every
// return value identical and the delivered streams byte-identical.
void run_differential_stream(std::uint64_t seed) {
  constexpr std::size_t kCapacity = 8;
  BoundedMpscQueue<int> ring(kCapacity);
  BoundedMpscQueueReference<int> oracle(kCapacity);
  Rng rng(seed);

  std::vector<int> ring_out;
  std::vector<int> oracle_out;
  int next_value = 0;
  for (int op = 0; op < 2000; ++op) {
    switch (rng.uniform_int(0, 5)) {
      case 0: {  // single push
        const int v = next_value++;
        EXPECT_EQ(ring.try_push(v), oracle.try_push(v)) << "op " << op;
        break;
      }
      case 1: {  // batch push
        const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 12));
        std::vector<int> a(n), b(n);
        for (std::size_t i = 0; i < n; ++i) a[i] = b[i] = next_value++;
        bool ring_closed = false;
        bool oracle_closed = false;
        EXPECT_EQ(ring.try_push_batch(a.data(), n, &ring_closed),
                  oracle.try_push_batch(b.data(), n, &oracle_closed))
            << "op " << op;
        EXPECT_EQ(ring_closed, oracle_closed) << "op " << op;
        break;
      }
      case 2:
      case 3: {  // timed pop (the only pop that cannot deadlock when idle)
        const std::size_t max_items = 1 + rng.uniform_int(0, 5);
        const PopOutcome r = ring.pop_batch_for(
            ring_out, max_items, std::chrono::milliseconds(1));
        const PopOutcome o = oracle.pop_batch_for(
            oracle_out, max_items, std::chrono::milliseconds(1));
        EXPECT_EQ(r.count, o.count) << "op " << op;
        EXPECT_EQ(r.closed, o.closed) << "op " << op;
        break;
      }
      case 4: {  // close (occasionally)
        if (rng.uniform_int(0, 3) == 0) {
          ring.close();
          oracle.close();
        }
        break;
      }
      case 5: {  // reopen (occasionally)
        if (rng.uniform_int(0, 3) == 0) {
          ring.reopen();
          oracle.reopen();
        }
        break;
      }
    }
    EXPECT_EQ(ring.size(), oracle.size()) << "op " << op;
    EXPECT_EQ(ring.closed(), oracle.closed()) << "op " << op;
  }
  // Drain both completely and compare the full delivered streams.
  ring.close();
  oracle.close();
  while (true) {
    const PopOutcome r =
        ring.pop_batch_for(ring_out, 16, std::chrono::milliseconds(1));
    const PopOutcome o =
        oracle.pop_batch_for(oracle_out, 16, std::chrono::milliseconds(1));
    EXPECT_EQ(r.count, o.count);
    EXPECT_EQ(r.closed, o.closed);
    if (r.closed || o.closed) break;
  }
  EXPECT_EQ(ring_out, oracle_out) << "seed " << seed;
}

TEST(BoundedQueueDifferential, OpStreamsMatchTheMutexOracle) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    run_differential_stream(seed);
  }
}

}  // namespace
}  // namespace slacksched
