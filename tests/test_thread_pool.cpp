#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/rng.hpp"

namespace slacksched {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { ++counter; });
  }
  pool.wait_idle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ReportsThreadCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.thread_count(), 3u);
}

TEST(ThreadPool, DefaultsToAtLeastOneThread) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(pool, n, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsNoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelMap, PreservesIndexOrder) {
  ThreadPool pool(8);
  const auto out = parallel_map<std::size_t>(
      pool, 5000, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 5000u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(ParallelMap, DeterministicWithForkedRngStreams) {
  // The canonical usage pattern: each task forks its own stream by index.
  ThreadPool pool(8);
  const Rng root(1234);
  auto runner = [&root](std::size_t i) {
    Rng rng = root.fork(i);
    double sum = 0.0;
    for (int j = 0; j < 100; ++j) sum += rng.uniform01();
    return sum;
  };
  const auto a = parallel_map<double>(pool, 64, runner);
  const auto b = parallel_map<double>(pool, 64, runner);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, ReusablePool) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    parallel_for(pool, 100, [&](std::size_t) { ++counter; });
  }
  EXPECT_EQ(counter.load(), 1000);
}

}  // namespace
}  // namespace slacksched
