/// \file
/// Commitment-on-admission baseline (the weaker commitment model of the
/// early admission-control literature, e.g. Goldwasser '99 and Lee '03):
/// the scheduler only commits to a job when it actually starts it, so a
/// submitted job may wait in a queue and be silently dropped if its latest
/// start time passes. This cannot be expressed through the immediate-
/// commitment OnlineScheduler interface, so it ships with its own
/// event-driven simulator and reports the same RunMetrics.
///
/// Substitution note (see DESIGN.md): Lee's exact multi-machine algorithm is
/// not specified in this paper; this queue-based greedy realizes the same
/// commitment model and serves as the commitment-model comparison point.
#pragma once

#include <string>
#include <vector>

#include "job/instance.hpp"
#include "sched/metrics.hpp"
#include "sched/schedule.hpp"

namespace slacksched {

/// Queue ordering used when a machine frees up.
enum class QueuePolicy {
  kEdf,               ///< earliest deadline first among startable jobs
  kLargestFirst,      ///< largest processing time first (load-greedy)
  kLeastSlackFirst,   ///< smallest latest-start margin first
};

[[nodiscard]] std::string to_string(QueuePolicy policy);

/// Index of the best startable pending job at time `now` under the queue
/// policy, or -1 when none can still start. Shared by the event-driven
/// simulator below and the streaming DeltaCommitScheduler
/// (models/delta_commit.hpp), which must agree job for job.
[[nodiscard]] int pick_startable(const std::vector<Job>& pending,
                                 TimePoint now, QueuePolicy policy);

/// Result of a delayed-commitment run.
struct DelayedCommitResult {
  Schedule schedule;
  RunMetrics metrics;
};

/// Simulates the commitment-on-admission queue scheduler on m machines.
[[nodiscard]] DelayedCommitResult run_delayed_commit(
    const Instance& instance, int machines,
    QueuePolicy policy = QueuePolicy::kEdf);

}  // namespace slacksched
