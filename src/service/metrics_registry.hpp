// Live serving-side counters for the admission gateway: what a provider's
// dashboard would watch while the system admits traffic. Writers are the
// gateway's producer threads (enqueue/backpressure counters) and each
// shard's consumer thread (decision counters); every field is an atomic,
// so snapshot() is a lock-free read that never stalls the ingest path.
//
// The per-shard decision counters are the live analogue of RunMetrics, and
// the snapshot carries the same totals the sim/observers dashboard derives
// offline (acceptance rate, accepted volume) — re-expressed over a running,
// sharded service instead of a finished single-engine replay.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.hpp"
#include "common/time.hpp"
#include "policy/criticality.hpp"

namespace slacksched {

/// Log-spaced admit-latency bins covering 100 ns .. 1 s.
inline constexpr std::size_t kAdmitLatencyBins = 28;
inline constexpr double kAdmitLatencyLo = 1e-7;
inline constexpr double kAdmitLatencyHi = 1.0;

/// One shard's counters at a point in time (plain values, safe to keep).
struct ShardMetricsSnapshot {
  std::size_t enqueued = 0;     ///< jobs accepted into the shard queue
  std::size_t submitted = 0;    ///< decisions rendered by the shard engine
  std::size_t accepted = 0;
  std::size_t rejected = 0;     ///< rejected by the admission policy
  std::size_t backpressure_rejected = 0;  ///< shed at the full queue
  double accepted_volume = 0.0;
  double rejected_volume = 0.0;
  /// Sum of admit latencies over all decisions (seconds) — the exact
  /// `_sum` a Prometheus histogram exposes next to its buckets.
  double latency_sum_seconds = 0.0;
  std::size_t queue_depth = 0;  ///< jobs waiting right now
  /// High-water mark of queue_depth. The depth counter is maintained
  /// outside the queue's lock, so under concurrency the observed peak can
  /// transiently exceed the queue capacity by up to one consumer batch.
  std::size_t peak_queue_depth = 0;
  std::size_t batches = 0;           ///< consumer wake-ups that found work

  // --- fault-tolerance counters (service/supervisor.hpp) ---
  std::size_t recoveries = 0;            ///< WAL replays / restarts completed
  std::size_t wal_records_replayed = 0;  ///< records re-applied by recovery
  std::size_t wal_truncations = 0;       ///< torn tails truncated
  std::size_t failovers = 0;         ///< jobs rerouted away from this shard
  std::size_t degraded_rejected = 0; ///< rejected: no healthy shard available

  // --- criticality classes (policy/criticality.hpp) ---
  /// Jobs shed with kRejectedCriticality: the class-aware policy refused
  /// them under queue pressure. Sum of class_shed.
  std::size_t criticality_shed = 0;
  /// Per-class counters, indexed by the Criticality wire value.
  std::array<std::size_t, kCriticalityCount> class_enqueued{};
  std::array<std::size_t, kCriticalityCount> class_accepted{};
  std::array<std::size_t, kCriticalityCount> class_rejected{};
  std::array<std::size_t, kCriticalityCount> class_shed{};

  [[nodiscard]] double acceptance_rate() const {
    return submitted == 0
               ? 0.0
               : static_cast<double>(accepted) / static_cast<double>(submitted);
  }
};

/// Registry-wide snapshot: per-shard rows, the aggregate row, and the
/// merged admit-latency histogram (seconds, log-spaced bins).
struct MetricsSnapshot {
  std::vector<ShardMetricsSnapshot> shards;
  /// Field-wise sum over shards, except `peak_queue_depth`, which is the
  /// MAX across shards: each shard's high-water mark was reached at its
  /// own instant, so summing them reports a backlog that never existed
  /// at any point in time. The aggregate peak answers "how deep did the
  /// worst queue get", not "what was the worst total backlog".
  ShardMetricsSnapshot total;
  Histogram admit_latency = Histogram::logarithmic(
      kAdmitLatencyLo, kAdmitLatencyHi, kAdmitLatencyBins);
  /// Per-class admit-latency bins and sums, merged across shards (same
  /// log-spaced edges as admit_latency). Plain counts: the exporter
  /// renders cumulative `le` buckets from them directly.
  std::array<std::array<std::uint64_t, kAdmitLatencyBins>, kCriticalityCount>
      class_latency_bins{};
  std::array<double, kCriticalityCount> class_latency_sum{};

  [[nodiscard]] std::string to_string() const;
};

/// Lock-free-read counter store, one cache-line-aligned slot per shard.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int shards);

  // --- writer side (producers) ---
  void on_enqueued(int shard, std::size_t count = 1);
  void on_backpressure(int shard, std::size_t count = 1);
  /// Per-class twin of on_enqueued, fed by the same producer call sites.
  void on_class_enqueued(int shard, Criticality criticality,
                         std::size_t count = 1);
  /// Records one job shed by the class-aware policy (kRejectedCriticality).
  void on_class_shed(int shard, Criticality criticality);

  // --- writer side (the shard's single consumer thread) ---
  void on_batch(int shard, std::size_t popped);
  /// Records one rendered decision. `latency_seconds` is queue-entry to
  /// decision-rendered wall time; `criticality` attributes the decision to
  /// its class family. Returns the latency bin the decision landed in so
  /// decision tracing can reuse it without a second search.
  std::size_t on_decision(int shard, double job_volume, bool accepted,
                          double latency_seconds,
                          Criticality criticality = Criticality::kBackground);

  // --- writer side (recovery / supervisor / failover router) ---
  /// Records one completed WAL replay for the shard.
  void on_recovery(int shard, std::size_t records_replayed, bool truncated);
  /// Records one job routed away from its (unavailable) home shard.
  void on_failover(int home_shard, std::size_t count = 1);
  /// Records jobs rejected with retry_after because no shard was available.
  void on_degraded_reject(int home_shard, std::size_t count = 1);

  [[nodiscard]] int shards() const { return shard_count_; }

  /// Point-in-time copy of every counter. Reads are relaxed atomics: the
  /// snapshot is internally consistent per counter, not a cross-counter
  /// linearization (totals can be mid-update by one job) — exactly the
  /// guarantee a live dashboard needs.
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// The latency bin (0..kAdmitLatencyBins-1) a decision latency falls
  /// into; out-of-range latencies clamp into the edge bins (the merged
  /// histogram's top bin plays the Prometheus +Inf bucket's role). Also
  /// the bin recorded in trace events (service/trace_ring.hpp).
  [[nodiscard]] std::size_t latency_bin(double seconds) const;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> enqueued{0};
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> backpressure_rejected{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> recoveries{0};
    std::atomic<std::uint64_t> wal_records_replayed{0};
    std::atomic<std::uint64_t> wal_truncations{0};
    std::atomic<std::uint64_t> failovers{0};
    std::atomic<std::uint64_t> degraded_rejected{0};
    std::atomic<std::int64_t> queue_depth{0};
    std::atomic<std::uint64_t> peak_queue_depth{0};
    // Single-writer (the shard consumer): plain load+store suffices.
    std::atomic<double> accepted_volume{0.0};
    std::atomic<double> rejected_volume{0.0};
    std::atomic<double> latency_sum{0.0};
    std::array<std::atomic<std::uint64_t>, kAdmitLatencyBins> latency{};
    // Per-criticality-class counters (policy/criticality.hpp).
    std::array<std::atomic<std::uint64_t>, kCriticalityCount> class_enqueued{};
    std::array<std::atomic<std::uint64_t>, kCriticalityCount> class_accepted{};
    std::array<std::atomic<std::uint64_t>, kCriticalityCount> class_rejected{};
    std::array<std::atomic<std::uint64_t>, kCriticalityCount> class_shed{};
    std::array<std::atomic<double>, kCriticalityCount> class_latency_sum{};
    std::array<std::array<std::atomic<std::uint64_t>, kAdmitLatencyBins>,
               kCriticalityCount>
        class_latency{};
  };

  std::vector<double> latency_edges_;  ///< kAdmitLatencyBins + 1 edges
  std::unique_ptr<Slot[]> slots_;
  int shard_count_;
};

}  // namespace slacksched
