#include "common/wire.hpp"

#include <array>

namespace slacksched::wire {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32_ieee(const void* data, std::size_t n) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace slacksched::wire
