// The sharded admission-gateway front end: S independent shards, each an
// OnlineScheduler over its own machine group, fed through bounded MPSC
// queues with explicit backpressure. The paper's model (immediate
// commitment on m identical machines with slack eps) maps onto each shard
// unchanged; the gateway adds the serving-side concerns — concurrent
// ingest, batching, load shedding, and live metrics — without touching
// the algorithms.
//
// Overload semantics: submissions are never silently dropped and never
// block. When a shard's queue is full the submit call returns
// SubmitStatus::kRejectedQueueFull (and the shed job is counted in the
// MetricsRegistry), so callers choose between retrying, rerouting, or
// propagating the rejection upstream.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sched/engine.hpp"
#include "sched/online.hpp"
#include "service/metrics_registry.hpp"
#include "service/router.hpp"
#include "service/shard.hpp"

namespace slacksched {

/// Outcome of one submission attempt at the gateway.
enum class SubmitStatus {
  kEnqueued,           ///< handed to a shard queue; a decision will follow
  kRejectedQueueFull,  ///< backpressure: the routed shard's queue is full
  kRejectedClosed,     ///< the gateway has been finished/shut down
};

[[nodiscard]] std::string to_string(SubmitStatus status);

/// Builds the scheduler owning shard `shard`'s machine group. Called once
/// per shard at gateway construction.
using ShardSchedulerFactory =
    std::function<std::unique_ptr<OnlineScheduler>(int shard)>;

/// Gateway deployment shape.
struct GatewayConfig {
  int shards = 1;
  std::size_t queue_capacity = 4096;  ///< per-shard submission queue bound
  std::size_t batch_size = 256;       ///< max jobs per consumer wake-up
  RoutingPolicy routing = RoutingPolicy::kRoundRobin;
  bool halt_shard_on_violation = true;
  bool record_decisions = true;
};

/// Per-batch ingest outcome (counts; pass `statuses` for per-job detail).
struct BatchSubmitResult {
  std::size_t enqueued = 0;
  std::size_t rejected_queue_full = 0;
  std::size_t rejected_closed = 0;
};

/// Everything a finished gateway run produced: one RunResult per shard
/// (decision logs + committed schedules), the merged RunMetrics, and the
/// final metrics snapshot.
struct GatewayResult {
  std::vector<RunResult> shards;
  RunMetrics merged;
  MetricsSnapshot metrics;

  /// True iff no shard attempted an illegal commitment.
  [[nodiscard]] bool clean() const;

  /// First commitment violation across shards (empty when clean).
  [[nodiscard]] std::string first_violation() const;
};

/// The service front end. Thread-safe ingest: any number of producer
/// threads may call submit()/submit_batch() concurrently; each shard's
/// decisions are rendered by its own consumer thread.
class AdmissionGateway {
 public:
  AdmissionGateway(const GatewayConfig& config,
                   const ShardSchedulerFactory& factory);

  /// Shuts down (close + join) if finish() was never called.
  ~AdmissionGateway();

  AdmissionGateway(const AdmissionGateway&) = delete;
  AdmissionGateway& operator=(const AdmissionGateway&) = delete;

  /// Routes and enqueues one job. Non-blocking; see SubmitStatus.
  [[nodiscard]] SubmitStatus submit(const Job& job);

  /// Batched ingest: routes every job, then pushes each shard's group
  /// under a single queue lock. Jobs keep their relative order within a
  /// shard. When `statuses` is non-null it is resized to jobs.size() and
  /// filled with the per-job outcome.
  BatchSubmitResult submit_batch(std::span<const Job> jobs,
                                 std::vector<SubmitStatus>* statuses = nullptr);

  /// Lock-free live counters (callable at any time, from any thread).
  [[nodiscard]] MetricsSnapshot metrics_snapshot() const {
    return metrics_.snapshot();
  }

  /// Closes every shard queue, joins the consumers, and collects results.
  /// After finish() all submissions return kRejectedClosed.
  GatewayResult finish();

  [[nodiscard]] const GatewayConfig& config() const { return config_; }
  [[nodiscard]] int shards() const { return config_.shards; }

 private:
  GatewayConfig config_;
  MetricsRegistry metrics_;
  ShardRouter router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<bool> finished_{false};
};

}  // namespace slacksched
