// EXT-C: google-benchmark microbenchmarks — decision throughput of the
// online algorithms (the per-job cost an admission controller pays), the
// ratio-function solve cost, and the offline substrate costs. These bound
// the library's viability at cloud-gateway request rates.
//
// Besides the google-benchmark suite this binary runs the threshold-scaling
// comparison: the FrontierSet-based ThresholdScheduler against the retained
// seed implementation (ReferenceThresholdScheduler) at m ∈ {1..1024},
// checking the decision streams stay identical and the new hot path performs
// zero steady-state heap allocations per arrival, and writing the results to
// BENCH_threshold.json (consumed by scripts/perf_check.py in CI).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <string>
#include <vector>

#include "adversary/lower_bound_game.hpp"
#include "bench_env.hpp"
#include "baselines/greedy.hpp"
#include "baselines/greedy_reference.hpp"
#include "core/classify_select.hpp"
#include "core/ratio_function.hpp"
#include "core/threshold.hpp"
#include "core/threshold_reference.hpp"
#include "offline/exact.hpp"
#include "offline/feasibility.hpp"
#include "offline/upper_bound.hpp"
#include "sched/engine.hpp"
#include "workload/generators.hpp"

namespace {

/// Global heap-allocation counter backing the zero-allocation claim for the
/// arrival hot path. Relaxed atomics: the counted sections are
/// single-threaded; the atomic only guards against benchmark-library
/// worker threads racing the counter.
std::atomic<std::uint64_t> g_heap_allocs{0};

}  // namespace


namespace {

void* counted_alloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace slacksched;

Instance bench_instance(std::size_t n, double eps, std::uint64_t seed) {
  WorkloadConfig config;
  config.n = n;
  config.eps = eps;
  config.arrival_rate = 4.0;
  config.seed = seed;
  return generate_workload(config);
}

void BM_ThresholdDecisions(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double eps = 0.1;
  const Instance inst = bench_instance(10000, eps, 42);
  ThresholdScheduler alg(eps, m);
  for (auto _ : state) {
    alg.reset();
    double volume = 0.0;
    for (const Job& job : inst.jobs()) {
      const Decision d = alg.on_arrival(job);
      if (d.accepted) volume += job.proc;
    }
    benchmark::DoNotOptimize(volume);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}
BENCHMARK(BM_ThresholdDecisions)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024);

void BM_ReferenceThresholdDecisions(benchmark::State& state) {
  // The retained seed implementation (sort per arrival): the baseline the
  // threshold-scaling section compares against.
  const int m = static_cast<int>(state.range(0));
  const double eps = 0.1;
  const Instance inst = bench_instance(10000, eps, 42);
  ReferenceThresholdScheduler alg(eps, m);
  for (auto _ : state) {
    alg.reset();
    double volume = 0.0;
    for (const Job& job : inst.jobs()) {
      const Decision d = alg.on_arrival(job);
      if (d.accepted) volume += job.proc;
    }
    benchmark::DoNotOptimize(volume);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}
BENCHMARK(BM_ReferenceThresholdDecisions)->Arg(16)->Arg(256)->Arg(1024);

void BM_GreedyDecisions(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const Instance inst = bench_instance(10000, 0.1, 42);
  GreedyScheduler alg(m);
  for (auto _ : state) {
    alg.reset();
    double volume = 0.0;
    for (const Job& job : inst.jobs()) {
      const Decision d = alg.on_arrival(job);
      if (d.accepted) volume += job.proc;
    }
    benchmark::DoNotOptimize(volume);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}
BENCHMARK(BM_GreedyDecisions)->Arg(1)->Arg(16);

void BM_ClassifySelectDecisions(benchmark::State& state) {
  const Instance inst = bench_instance(10000, 0.01, 42);
  ClassifySelectConfig config;
  config.eps = 0.01;
  config.seed = 7;
  ClassifySelectScheduler alg(config);
  for (auto _ : state) {
    alg.reset();
    for (const Job& job : inst.jobs()) {
      benchmark::DoNotOptimize(alg.on_arrival(job));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(inst.size()));
}
BENCHMARK(BM_ClassifySelectDecisions);

void BM_RatioFunctionSolve(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  double eps = 0.001;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RatioFunction::solve(eps, m));
    eps = eps < 0.9 ? eps * 1.7 : 0.001;  // vary the input
  }
}
BENCHMARK(BM_RatioFunctionSolve)->Arg(2)->Arg(16)->Arg(256);

void BM_FractionalUpperBound(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(n, 0.1, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(preemptive_fractional_upper_bound(inst, 4));
  }
}
BENCHMARK(BM_FractionalUpperBound)->Arg(50)->Arg(200)->Arg(800);

void BM_AdversaryGame(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  AdversaryConfig config;
  config.eps = 0.1;
  config.m = m;
  config.beta = 1e-3;
  const LowerBoundGame game(config);
  ThresholdScheduler alg(0.1, m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(game.play(alg));
  }
}
BENCHMARK(BM_AdversaryGame)->Arg(2)->Arg(4)->Arg(8);

void BM_ExactOptimum(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  WorkloadConfig config;
  config.n = n;
  config.eps = 0.1;
  config.arrival_rate = 2.0;
  config.size_min = 1.0;
  config.size_max = 8.0;
  config.slack = SlackModel::kTight;
  config.seed = 77;
  const Instance inst = generate_workload(config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(exact_optimal_load(inst, 2));
  }
}
BENCHMARK(BM_ExactOptimum)->Arg(8)->Arg(12)->Arg(14);

void BM_MigrationFeasibility(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Instance inst = bench_instance(n, 0.1, 3);
  const std::vector<Job> jobs(inst.jobs().begin(), inst.jobs().end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(preemptive_migration_feasible_jobs(jobs, 4));
  }
}
BENCHMARK(BM_MigrationFeasibility)->Arg(50)->Arg(200);

void BM_ScheduleIntervalFree(benchmark::State& state) {
  // Binary-search overlap checks on a long committed machine timeline.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  Schedule schedule(1);
  Job job;
  job.proc = 1.0;
  job.deadline = 1e18;
  for (std::size_t i = 0; i < n; ++i) {
    job.id = static_cast<JobId>(i + 1);
    job.release = 0.0;
    schedule.commit(job, 0, 2.0 * static_cast<double>(i));
  }
  double probe = 0.0;
  for (auto _ : state) {
    probe += 1.37;
    if (probe > 2.0 * static_cast<double>(n)) probe = 0.0;
    benchmark::DoNotOptimize(schedule.interval_free(0, probe, 0.5));
  }
}
BENCHMARK(BM_ScheduleIntervalFree)->Arg(100)->Arg(10000);

void BM_WorkloadGeneration(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench_instance(n, 0.1, ++seed));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_WorkloadGeneration)->Arg(1000)->Arg(100000);

// ---------------------------------------------------------------------------
// Threshold-scaling comparison (old vs. new hot path) → BENCH_threshold.json
// ---------------------------------------------------------------------------

struct ScalingRow {
  int machines = 0;
  double old_jobs_per_sec = 0.0;
  double new_jobs_per_sec = 0.0;
  double speedup = 0.0;
  bool decisions_identical = false;
  std::uint64_t new_heap_allocs = 0;  ///< steady-state, whole replayed stream
  double new_allocs_per_arrival = 0.0;
};

/// Replays the stream once; returns accepted volume so the loop cannot be
/// optimized away.
double replay(OnlineScheduler& alg, const Instance& inst) {
  alg.reset();
  double volume = 0.0;
  for (const Job& job : inst.jobs()) {
    if (alg.on_arrival(job).accepted) volume += job.proc;
  }
  return volume;
}

/// Sustained decision throughput: repeats full-stream replays until the
/// elapsed wall time passes `min_seconds` (at least one replay).
double measure_jobs_per_sec(OnlineScheduler& alg, const Instance& inst,
                            double min_seconds) {
  (void)replay(alg, inst);  // warm caches and drop one-time costs
  std::size_t passes = 0;
  double sink = 0.0;
  const auto start = std::chrono::steady_clock::now();
  std::chrono::duration<double> elapsed{0.0};
  do {
    sink += replay(alg, inst);
    ++passes;
    elapsed = std::chrono::steady_clock::now() - start;
  } while (elapsed.count() < min_seconds);
  benchmark::DoNotOptimize(sink);
  return static_cast<double>(passes * inst.size()) / elapsed.count();
}

ScalingRow run_scaling_config(const Instance& inst, double eps, int machines,
                              double min_seconds) {
  ScalingRow row;
  row.machines = machines;

  ThresholdScheduler fast(eps, machines);
  ReferenceThresholdScheduler slow(eps, machines);

  // Decision-identity check: the optimized path must reproduce the seed's
  // stream bit-for-bit before its throughput number means anything.
  fast.reset();
  slow.reset();
  row.decisions_identical = true;
  for (const Job& job : inst.jobs()) {
    if (fast.on_arrival(job) != slow.on_arrival(job)) {
      row.decisions_identical = false;
      break;
    }
  }

  // Steady-state allocation count of the new path: one warm replay (the
  // schedulers preallocate at construction, so even this performs no
  // arrival-path allocations), then a counted full-stream replay.
  (void)replay(fast, inst);
  fast.reset();
  const std::uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (const Job& job : inst.jobs()) {
    if (fast.on_arrival(job).accepted) sink += job.proc;
  }
  benchmark::DoNotOptimize(sink);
  row.new_heap_allocs =
      g_heap_allocs.load(std::memory_order_relaxed) - before;
  row.new_allocs_per_arrival = static_cast<double>(row.new_heap_allocs) /
                               static_cast<double>(inst.size());

  row.new_jobs_per_sec = measure_jobs_per_sec(fast, inst, min_seconds);
  row.old_jobs_per_sec = measure_jobs_per_sec(slow, inst, min_seconds);
  row.speedup = row.new_jobs_per_sec / row.old_jobs_per_sec;
  return row;
}

void write_threshold_json(const std::vector<ScalingRow>& rows,
                          std::size_t jobs, double eps) {
  std::ofstream out("BENCH_threshold.json");
  out << "{\n"
      << "  \"bench\": \"threshold_scaling\",\n"
      << bench::BenchEnv::detect(1, /*pinned=*/false, "closed").json_fields()
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"eps\": " << eps << ",\n"
      << "  \"old\": \"ReferenceThresholdScheduler (sort per arrival)\",\n"
      << "  \"new\": \"ThresholdScheduler (FrontierSet, O(log m))\",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& r = rows[i];
    out << "    {\"machines\": " << r.machines
        << ", \"old_jobs_per_sec\": " << r.old_jobs_per_sec
        << ", \"new_jobs_per_sec\": " << r.new_jobs_per_sec
        << ", \"speedup\": " << r.speedup << ", \"decisions_identical\": "
        << (r.decisions_identical ? "true" : "false")
        << ", \"new_heap_allocs_steady_state\": " << r.new_heap_allocs
        << ", \"new_allocs_per_arrival\": " << r.new_allocs_per_arrival << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

int run_threshold_scaling(std::size_t jobs) {
  constexpr double kEps = 0.1;
  constexpr double kMinSeconds = 0.2;
  const Instance inst = bench_instance(jobs, kEps, 42);

  std::printf("\nthreshold scaling: old (sort per arrival) vs new "
              "(FrontierSet), %zu jobs, eps=%.2f\n",
              jobs, kEps);
  std::printf("  %8s  %16s  %16s  %9s  %10s  %7s\n", "machines", "old jobs/s",
              "new jobs/s", "speedup", "identical", "allocs");

  std::vector<ScalingRow> rows;
  bool ok = true;
  for (const int m : {1, 4, 16, 64, 256, 1024}) {
    const ScalingRow row = run_scaling_config(inst, kEps, m, kMinSeconds);
    std::printf("  %8d  %16.0f  %16.0f  %8.2fx  %10s  %7.3f\n", row.machines,
                row.old_jobs_per_sec, row.new_jobs_per_sec, row.speedup,
                row.decisions_identical ? "yes" : "NO",
                row.new_allocs_per_arrival);
    ok = ok && row.decisions_identical && row.new_heap_allocs == 0;
    rows.push_back(row);
  }
  write_threshold_json(rows, jobs, kEps);
  std::printf("  wrote BENCH_threshold.json\n");
  if (!ok) {
    std::printf("  FATAL: decision divergence or arrival-path allocation\n");
    return 1;
  }
  return 0;
}

}  // namespace

// Like BENCHMARK_MAIN(), but additionally mirrors the results to
// BENCH_micro.json (google-benchmark's JSON format) unless the caller
// already passed an explicit --benchmark_out, runs the threshold-scaling
// comparison afterwards, and writes BENCH_threshold.json.
//
// Extra (non-google-benchmark) flag, stripped before Initialize:
//   --threshold_jobs=N   stream length for the scaling section
//                        (default 20000; 0 skips the section)
int main(int argc, char** argv) {
  std::size_t threshold_jobs = 20000;
  std::vector<char*> args;
  for (char** arg = argv; arg != argv + argc; ++arg) {
    constexpr const char kFlag[] = "--threshold_jobs=";
    if (std::strncmp(*arg, kFlag, sizeof(kFlag) - 1) == 0) {
      threshold_jobs = static_cast<std::size_t>(
          std::strtoull(*arg + sizeof(kFlag) - 1, nullptr, 10));
    } else {
      args.push_back(*arg);
    }
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  const bool has_out =
      std::any_of(args.begin(), args.end(), [](const char* arg) {
        return std::string(arg).rfind("--benchmark_out=", 0) == 0;
      });
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return threshold_jobs > 0 ? run_threshold_scaling(threshold_jobs) : 0;
}
