// MATRIX: the cross-model sweep of the commitment-model matrix.
//
// Replays poisson / burst / adversarial job streams through every point of
// {commit model} x {eps} x {m} x {speed profile}, all built by the same
// model factory the gateway's scheduler selector uses. Every run goes
// through run_online, so every decision is validated against both physics
// and the model's irrevocability contract; a row is "clean" only when the
// whole stream was decided legally, and "valid" only when the committed
// schedule passes the offline validator. Emits BENCH_matrix.json, gated by
// scripts/perf_check.py --matrix-json: all rows clean + valid, full
// coverage of the grid, and the uniform Threshold rows within noise of the
// committed BENCH_threshold.json trajectory.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "models/model_factory.hpp"
#include "models/speed_profile.hpp"
#include "sched/engine.hpp"
#include "sched/validator.hpp"
#include "workload/generators.hpp"

namespace {

using namespace slacksched;

struct Row {
  std::string model;         // ModelConfig::label()
  std::string commit_model;  // to_string(CommitModel)
  double eps = 0.0;
  int machines = 0;
  std::string speed_profile;
  std::string workload;
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double accepted_volume = 0.0;
  bool clean = false;  // every decision legal under the model's contract
  bool valid = false;  // committed schedule passes the offline validator
  std::string violation;
};

/// The three stream shapes of the sweep. "adversarial" is the batch worst
/// case: everything released at once with exactly the guaranteed slack, so
/// deferred models must triage a deep queue under tight windows.
Instance make_stream(const std::string& workload, double eps, int machines,
                     std::size_t n) {
  WorkloadConfig config;
  config.n = n;
  config.eps = eps;
  config.arrival_rate = static_cast<double>(machines);
  config.seed = 42;
  if (workload == "burst") {
    config.arrival = ArrivalModel::kBursty;
  } else if (workload == "adversarial") {
    config.arrival = ArrivalModel::kAllAtOnce;
    config.slack = SlackModel::kTight;
  }
  return generate_workload(config);
}

std::vector<ModelConfig> model_grid(double eps, int machines,
                                    const SpeedProfile& profile) {
  const std::vector<double> speeds =
      profile.uniform() ? std::vector<double>{} : profile.speeds();
  std::vector<ModelConfig> grid;
  {
    ModelConfig c;
    c.model = CommitModel::kOnArrival;
    c.arrival = ArrivalPolicy::kThreshold;
    c.eps = eps;
    c.machines = machines;
    c.speeds = speeds;
    grid.push_back(c);
  }
  {
    ModelConfig c;
    c.model = CommitModel::kOnArrival;
    c.arrival = ArrivalPolicy::kGreedyBestFit;
    c.machines = machines;
    c.speeds = speeds;
    grid.push_back(c);
  }
  for (const double delta : {0.25, 1.0}) {
    ModelConfig c;
    c.model = CommitModel::kDelta;
    c.delta = delta;
    c.machines = machines;
    c.speeds = speeds;
    grid.push_back(c);
  }
  {
    ModelConfig c;
    c.model = CommitModel::kOnAdmission;
    c.machines = machines;
    c.speeds = speeds;
    grid.push_back(c);
  }
  return grid;
}

Row run_point(const ModelConfig& config, const SpeedProfile& profile,
              const std::string& workload, const Instance& instance,
              double eps) {
  Row row;
  row.model = config.label();
  row.commit_model = to_string(config.model);
  row.eps = eps;
  row.machines = config.machines;
  row.speed_profile = profile.label();
  row.workload = workload;
  row.jobs = instance.size();

  const std::unique_ptr<OnlineScheduler> scheduler = make_scheduler(config);
  RunOptions options;
  options.record_decisions = false;  // legality is checked either way
  const auto start = std::chrono::steady_clock::now();
  const RunResult result = run_online(*scheduler, instance, options);
  const auto stop = std::chrono::steady_clock::now();

  row.seconds = std::chrono::duration<double>(stop - start).count();
  row.jobs_per_sec = static_cast<double>(instance.size()) / row.seconds;
  row.accepted = result.metrics.accepted;
  row.rejected = result.metrics.rejected;
  row.accepted_volume = result.metrics.accepted_volume;
  row.clean = result.clean() &&
              result.metrics.accepted + result.metrics.rejected ==
                  instance.size();
  row.violation = result.commitment_violation;
  row.valid = validate_schedule(instance, result.schedule).ok;
  return row;
}

void write_json(const std::vector<Row>& rows, std::size_t jobs) {
  std::ofstream out("BENCH_matrix.json");
  out << "{\n"
      << "  \"bench\": \"model_matrix\",\n"
      << bench::BenchEnv::detect(1, /*pinned=*/false, "closed").json_fields()
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    out << "    {\"model\": \"" << r.model << "\", \"commit_model\": \""
        << r.commit_model << "\", \"eps\": " << r.eps
        << ", \"machines\": " << r.machines << ", \"speed_profile\": \""
        << r.speed_profile << "\", \"workload\": \"" << r.workload
        << "\", \"jobs\": " << r.jobs << ", \"seconds\": " << r.seconds
        << ", \"jobs_per_sec\": " << r.jobs_per_sec
        << ", \"accepted\": " << r.accepted
        << ", \"rejected\": " << r.rejected
        << ", \"accepted_volume\": " << r.accepted_volume
        << ", \"clean\": " << (r.clean ? "true" : "false")
        << ", \"valid\": " << (r.valid ? "true" : "false") << "}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Optional override: model_matrix [jobs-per-row], default 4000 (keeps the
  // 180-row sweep under a minute); smoke-test with e.g. 500.
  std::size_t n = 4000;
  if (argc > 1) {
    char* end = nullptr;
    n = static_cast<std::size_t>(std::strtoull(argv[1], &end, 10));
    if (end == argv[1] || *end != '\0' || n == 0) {
      std::fprintf(stderr, "usage: %s [jobs>0]  (got '%s')\n", argv[0],
                   argv[1]);
      return 2;
    }
  }

  std::printf("MATRIX: commitment-model sweep (%zu jobs per row)\n\n", n);
  std::printf("  %-26s %-12s %5s %3s %-18s %-11s %12s %9s %9s  %s\n",
              "model", "commit", "eps", "m", "speeds", "workload",
              "jobs/sec", "accepted", "rejected", "status");

  std::vector<Row> rows;
  bool all_ok = true;
  for (const double eps : {0.1, 0.5}) {
    for (const int machines : {4, 16}) {
      const std::vector<SpeedProfile> profiles = {
          SpeedProfile(machines),
          SpeedProfile::two_tier(machines, machines / 4, 4.0),
          SpeedProfile::geometric(machines, 0.75),
      };
      for (const std::string workload : {"poisson", "burst", "adversarial"}) {
        const Instance instance = make_stream(workload, eps, machines, n);
        for (const SpeedProfile& profile : profiles) {
          for (const ModelConfig& config :
               model_grid(eps, machines, profile)) {
            const Row row = run_point(config, profile, workload, instance,
                                      eps);
            std::printf(
                "  %-26s %-12s %5.2f %3d %-18s %-11s %12.0f %9zu %9zu  %s\n",
                row.model.c_str(), row.commit_model.c_str(), row.eps,
                row.machines, row.speed_profile.c_str(),
                row.workload.c_str(), row.jobs_per_sec, row.accepted,
                row.rejected,
                row.clean && row.valid
                    ? "ok"
                    : (row.violation.empty() ? "INVALID SCHEDULE"
                                             : row.violation.c_str()));
            all_ok = all_ok && row.clean && row.valid;
            rows.push_back(row);
          }
        }
      }
    }
  }

  write_json(rows, n);
  std::printf("\n  %zu rows; wrote BENCH_matrix.json\n", rows.size());
  if (!all_ok) {
    std::fprintf(stderr, "FAILED: at least one row was not clean+valid\n");
    return 1;
  }
  return 0;
}
