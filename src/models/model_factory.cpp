#include "models/model_factory.hpp"

#include <cmath>
#include <cstdio>

#include "baselines/greedy.hpp"
#include "common/expects.hpp"
#include "core/threshold.hpp"
#include "models/delta_commit.hpp"

namespace slacksched {

namespace {

/// Compact number for labels: "0.25", not "0.250000".
std::string compact(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", value);
  return buf;
}

}  // namespace

std::string to_string(ArrivalPolicy policy) {
  switch (policy) {
    case ArrivalPolicy::kThreshold:
      return "threshold";
    case ArrivalPolicy::kGreedyBestFit:
      return "greedy-best-fit";
  }
  return "unknown";
}

std::vector<std::string> ModelConfig::validate() const {
  std::vector<std::string> problems;
  if (machines < 1) problems.push_back("machines must be >= 1");
  if (!speeds.empty() &&
      static_cast<int>(speeds.size()) != machines) {
    problems.push_back("speeds has " + std::to_string(speeds.size()) +
                       " entries for " + std::to_string(machines) +
                       " machines");
  }
  for (const double s : speeds) {
    if (!(std::isfinite(s) && s > 0.0)) {
      problems.push_back("every machine speed must be finite and > 0");
      break;
    }
  }
  if (model == CommitModel::kOnArrival &&
      arrival == ArrivalPolicy::kThreshold &&
      !(eps > 0.0 && eps <= 1.0)) {
    problems.push_back("the Threshold algorithm requires 0 < eps <= 1");
  }
  if (model == CommitModel::kDelta &&
      !(delta >= 0.0 && std::isfinite(delta))) {
    problems.push_back("delta must be finite and >= 0");
  }
  return problems;
}

std::string ModelConfig::label() const {
  switch (model) {
    case CommitModel::kOnArrival:
      return to_string(model) + "/" + to_string(arrival);
    case CommitModel::kDelta:
      return to_string(model) + "(" + compact(delta) + ")/" +
             to_string(queue);
    case CommitModel::kOnAdmission:
      return to_string(model) + "/" + to_string(queue);
  }
  return "unknown";
}

std::unique_ptr<OnlineScheduler> make_scheduler(const ModelConfig& config) {
  const std::vector<std::string> problems = config.validate();
  SLACKSCHED_EXPECTS(problems.empty());

  switch (config.model) {
    case CommitModel::kOnArrival: {
      if (config.arrival == ArrivalPolicy::kGreedyBestFit) {
        if (config.speeds.empty()) {
          return std::make_unique<GreedyScheduler>(config.machines,
                                                   GreedyPolicy::kBestFit);
        }
        return std::make_unique<GreedyScheduler>(SpeedProfile(config.speeds),
                                                 GreedyPolicy::kBestFit);
      }
      ThresholdConfig threshold;
      threshold.eps = config.eps;
      threshold.machines = config.machines;
      if (!config.speeds.empty()) {
        threshold.speeds = SpeedProfile(config.speeds);
      }
      return std::make_unique<ThresholdScheduler>(threshold);
    }
    case CommitModel::kDelta:
    case CommitModel::kOnAdmission: {
      DeltaCommitConfig delta;
      delta.machines = config.machines;
      delta.delta = config.delta;
      delta.commit_on_admission = config.model == CommitModel::kOnAdmission;
      delta.queue = config.queue;
      delta.speeds = config.speeds;
      return std::make_unique<DeltaCommitScheduler>(delta);
    }
  }
  SLACKSCHED_EXPECTS(false);  // unreachable: enum fully covered
  return nullptr;
}

}  // namespace slacksched
