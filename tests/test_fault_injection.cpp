// Deterministic fault injection, and the crash-recovery property the whole
// fault-tolerance layer exists for: under fsync=every-commit, a randomly
// placed worker crash loses no accepted job — the state recovered from the
// commit log is exactly the committed schedule, record for record.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/threshold.hpp"
#include "models/model_factory.hpp"
#include "models/speed_profile.hpp"
#include "sched/validator.hpp"
#include "service/fault_injection.hpp"
#include "service/gateway.hpp"
#include "service/recovery.hpp"
#include "workload/generators.hpp"

namespace slacksched {
namespace {

constexpr double kEps = 0.1;
constexpr int kMachines = 3;

/// Fresh per-test WAL directory under the gtest temp dir.
std::string wal_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "slacksched_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// Supervision tuned for tests: millisecond-scale polling and backoff so a
/// crash/restart cycle completes in a few milliseconds.
SupervisorConfig fast_supervisor() {
  SupervisorConfig config;
  config.poll_interval = std::chrono::milliseconds(2);
  config.stall_threshold = std::chrono::milliseconds(200);
  config.down_threshold = std::chrono::milliseconds(500);
  config.max_restarts = 10;
  config.backoff_initial = std::chrono::milliseconds(2);
  config.backoff_max = std::chrono::milliseconds(10);
  config.retry_after = std::chrono::milliseconds(5);
  return config;
}

TEST(FaultInjector, TriggerFiresExactlyOnceAtItsHitCount) {
  FaultPlan plan;
  plan.add({FaultSite::kCommit, /*shard=*/2, /*hit=*/3});
  FaultInjector injector(plan);

  EXPECT_FALSE(injector.fires(FaultSite::kCommit, 2));  // hit 1
  EXPECT_FALSE(injector.fires(FaultSite::kCommit, 2));  // hit 2
  EXPECT_FALSE(injector.fires(FaultSite::kCommit, 0));  // other shard
  EXPECT_FALSE(injector.fires(FaultSite::kDequeue, 2)); // other site
  EXPECT_TRUE(injector.fires(FaultSite::kCommit, 2));   // hit 3: fires
  EXPECT_FALSE(injector.fires(FaultSite::kCommit, 2));  // one-shot

  EXPECT_EQ(injector.hits(FaultSite::kCommit, 2), 4u);
  EXPECT_EQ(injector.hits(FaultSite::kCommit, 0), 1u);
  EXPECT_EQ(injector.hits(FaultSite::kDequeue, 2), 1u);
  EXPECT_EQ(injector.fired(), 1u);
}

TEST(FaultInjector, CountersAreIndependentPerSiteAndShard) {
  FaultInjector injector{FaultPlan{}};
  for (int i = 0; i < 5; ++i) (void)injector.fires(FaultSite::kEnqueue, 0);
  for (int i = 0; i < 3; ++i) (void)injector.fires(FaultSite::kEnqueue, 7);
  (void)injector.fires(FaultSite::kFsync, 0);
  EXPECT_EQ(injector.hits(FaultSite::kEnqueue, 0), 5u);
  EXPECT_EQ(injector.hits(FaultSite::kEnqueue, 7), 3u);
  EXPECT_EQ(injector.hits(FaultSite::kFsync, 0), 1u);
  EXPECT_EQ(injector.hits(FaultSite::kWorkerPanic, 0), 0u);
  EXPECT_EQ(injector.fired(), 0u);
}

TEST(FaultPlan, RandomCrashIsDeterministicInTheSeed) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    const FaultPlan a = FaultPlan::random_crash(seed, /*shards=*/4,
                                                /*max_hit=*/100);
    const FaultPlan b = FaultPlan::random_crash(seed, 4, 100);
    ASSERT_EQ(a.triggers().size(), 1u);
    ASSERT_EQ(b.triggers().size(), 1u);
    EXPECT_EQ(a.triggers()[0].site, b.triggers()[0].site);
    EXPECT_EQ(a.triggers()[0].shard, b.triggers()[0].shard);
    EXPECT_EQ(a.triggers()[0].hit, b.triggers()[0].hit);

    const FaultTrigger& t = a.triggers()[0];
    EXPECT_NE(t.site, FaultSite::kEnqueue);  // crash sites only
    EXPECT_GE(t.shard, 0);
    EXPECT_LT(t.shard, 4);
    EXPECT_GE(t.hit, 1u);
    EXPECT_LE(t.hit, 100u);
  }
}

TEST(FaultPlan, DifferentSeedsExploreDifferentCrashes) {
  // Not a hard guarantee per pair, but over 32 seeds the plans must not
  // all collapse onto one (site, shard, hit).
  bool any_difference = false;
  const FaultPlan first = FaultPlan::random_crash(0, 4, 1000);
  for (std::uint64_t seed = 1; seed < 32; ++seed) {
    const FaultPlan plan = FaultPlan::random_crash(seed, 4, 1000);
    if (plan.triggers()[0].hit != first.triggers()[0].hit ||
        plan.triggers()[0].site != first.triggers()[0].site ||
        plan.triggers()[0].shard != first.triggers()[0].shard) {
      any_difference = true;
      break;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(FaultSiteNames, EverySiteHasAName) {
  for (const FaultSite site :
       {FaultSite::kEnqueue, FaultSite::kDequeue, FaultSite::kCommit,
        FaultSite::kFsync, FaultSite::kWorkerPanic}) {
    EXPECT_FALSE(to_string(site).empty());
  }
}

TEST(FaultInjection, EnqueueFaultLooksLikeOneBackpressureRefusal) {
  FaultPlan plan;
  plan.add({FaultSite::kEnqueue, 0, 1});
  FaultInjector injector(plan);

  GatewayConfig config;
  config.shards = 1;
  config.supervisor.enabled = false;
  config.fault_injector = &injector;
  AdmissionGateway gateway(
      config, [](int) { return std::make_unique<ThresholdScheduler>(kEps, 2); });

  Job job;
  job.id = 1;
  job.release = 0.0;
  job.proc = 1.0;
  job.deadline = 10.0;
  EXPECT_EQ(gateway.submit(job), Outcome::kRejectedQueueFull);
  EXPECT_EQ(gateway.submit(job), Outcome::kEnqueued);
  const GatewayResult result = gateway.finish();
  EXPECT_EQ(result.merged.submitted, 1u);
  EXPECT_EQ(result.metrics.total.backpressure_rejected, 1u);
}

/// The acceptance property: a randomized workload, a seeded random crash
/// site, a 1-shard WAL-backed gateway under fsync=every-commit. After the
/// run (crash, supervised restart, replay, resume), the committed schedule
/// must equal the accepted-and-logged set record for record, every record
/// must re-validate, and the schedule must be legal for the instance.
void run_crash_recovery_property(std::uint64_t seed, int* crashes_fired) {
  SCOPED_TRACE("seed=" + std::to_string(seed));
  WorkloadConfig wconfig;
  wconfig.n = 800;
  wconfig.eps = kEps;
  wconfig.arrival_rate = 2.0;
  wconfig.seed = static_cast<unsigned>(1000 + seed);
  const Instance instance = generate_workload(wconfig);

  // Arm one crash somewhere in the first ~60 per-site events: dequeue,
  // commit, fsync, or clean batch boundary — whichever the seed picks.
  FaultInjector injector(FaultPlan::random_crash(seed, 1, 60));

  GatewayConfig config;
  config.shards = 1;
  config.queue_capacity = 4096;
  config.batch_size = 32;
  config.wal_dir = wal_dir("crash_prop_" + std::to_string(seed));
  config.wal_fsync = FsyncPolicy::kEveryCommit;
  config.supervisor = fast_supervisor();
  config.pop_timeout = std::chrono::milliseconds(5);
  config.fault_injector = &injector;
  AdmissionGateway gateway(config, [](int) {
    return std::make_unique<ThresholdScheduler>(kEps, kMachines);
  });

  for (const Job& job : instance.jobs()) {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      const Outcome status = gateway.submit(job);
      if (status == Outcome::kEnqueued) break;
      ASSERT_NE(status, Outcome::kRejectedClosed);
      ASSERT_LT(std::chrono::steady_clock::now(), give_up)
          << "submission stuck while shard recovering";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const GatewayResult result = gateway.finish();
  ASSERT_EQ(result.shards.size(), 1u);
  const Schedule& committed = result.shards[0].schedule;

  // 1. The committed schedule is legal for the instance (starts, deadlines,
  //    no overlap) — recovery resurrected no illegal state.
  const ValidationReport report = validate_schedule(instance, committed);
  EXPECT_TRUE(report.ok) << report.to_string();

  // 2. Replaying the log independently (read-only) reproduces the committed
  //    schedule exactly: zero accepted-and-logged jobs lost, none invented.
  //    recover_commit_log re-validates every record on the way.
  const RecoveryResult replayed =
      recover_commit_log(config.wal_dir + "/shard-0.wal", kMachines, nullptr,
                         /*truncate_file=*/false);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_FALSE(replayed.tail_truncated)
      << "every-commit fsync left a torn tail";
  const std::vector<Placement> from_log = replayed.schedule.all_placements();
  const std::vector<Placement> from_run = committed.all_placements();
  ASSERT_EQ(from_log.size(), from_run.size());
  for (std::size_t i = 0; i < from_log.size(); ++i) {
    EXPECT_EQ(from_log[i].job, from_run[i].job) << "placement " << i;
    EXPECT_EQ(from_log[i].machine, from_run[i].machine) << "placement " << i;
    EXPECT_DOUBLE_EQ(from_log[i].start, from_run[i].start)
        << "placement " << i;
  }

  // 3. When the armed crash fired, the run must also report the recovery:
  //    either a supervised restart happened or the final result carries the
  //    worker's fatal error (crash too late for a restart before finish).
  if (injector.fired() > 0) {
    ++*crashes_fired;
    const bool restarted = gateway.supervisor().restarts(0) > 0;
    EXPECT_TRUE(restarted || !result.errors.empty())
        << "crash fired but neither a restart nor an error was reported";
    EXPECT_GE(result.metrics.total.recoveries + result.errors.size(), 1u);
  }

  std::filesystem::remove_all(config.wal_dir);
}

TEST(CrashRecoveryProperty, NoAcceptedJobIsLostAcrossRandomCrashSites) {
  int crashes_fired = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull, 6ull}) {
    run_crash_recovery_property(seed, &crashes_fired);
  }
  // The property is vacuous if the armed crashes never trigger: with six
  // seeds and hit counts in [1, 60] on an 800-job stream, most must fire.
  EXPECT_GE(crashes_fired, 3);
}

/// The same WAL round-trip property for the deferred-commitment and
/// related-machine schedulers, driven through the gateway's model selector.
/// After crash, supervised restart, replay and resume: the committed
/// schedule is legal, and an independent read-only replay of the log —
/// under the model's speed profile — reproduces it placement for
/// placement, including the speed-aware durations. Tentative (undecided)
/// jobs lost in the crash are permitted casualties under δ-commitment; the
/// property covers every *committed* job.
void run_model_crash_recovery(std::uint64_t seed, const ModelConfig& model,
                              const std::string& tag, int* crashes_fired) {
  SCOPED_TRACE("seed=" + std::to_string(seed) + " model=" + model.label());
  WorkloadConfig wconfig;
  wconfig.n = 600;
  wconfig.eps = kEps;
  wconfig.arrival_rate = 2.0;
  wconfig.seed = static_cast<unsigned>(2000 + seed);
  const Instance instance = generate_workload(wconfig);

  FaultInjector injector(FaultPlan::random_crash(seed, 1, 60));

  GatewayConfig config;
  config.shards = 1;
  config.queue_capacity = 4096;
  config.batch_size = 32;
  config.wal_dir = wal_dir("model_crash_" + tag + "_" + std::to_string(seed));
  config.wal_fsync = FsyncPolicy::kEveryCommit;
  config.supervisor = fast_supervisor();
  config.pop_timeout = std::chrono::milliseconds(5);
  config.fault_injector = &injector;
  config.model = model;
  AdmissionGateway gateway(config);

  for (const Job& job : instance.jobs()) {
    const auto give_up =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
      const Outcome status = gateway.submit(job);
      if (status == Outcome::kEnqueued) break;
      ASSERT_NE(status, Outcome::kRejectedClosed);
      ASSERT_LT(std::chrono::steady_clock::now(), give_up)
          << "submission stuck while shard recovering";
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  const GatewayResult result = gateway.finish();
  ASSERT_EQ(result.shards.size(), 1u);
  const Schedule& committed = result.shards[0].schedule;
  EXPECT_TRUE(result.clean()) << result.first_violation();

  const ValidationReport report = validate_schedule(instance, committed);
  EXPECT_TRUE(report.ok) << report.to_string();

  // Read-only replay under the model's speed profile: the recovered
  // schedule must be speed-aware (durations p_j / s_i, not p_j).
  const SpeedProfile profile = model.speeds.empty()
                                   ? SpeedProfile(model.machines)
                                   : SpeedProfile(model.speeds);
  const RecoveryResult replayed = recover_commit_log(
      config.wal_dir + "/shard-0.wal", model.machines, nullptr,
      /*truncate_file=*/false, profile.uniform() ? nullptr : &profile);
  ASSERT_TRUE(replayed.ok) << replayed.error;
  EXPECT_FALSE(replayed.tail_truncated)
      << "every-commit fsync left a torn tail";
  EXPECT_EQ(replayed.schedule.uniform_speeds(), committed.uniform_speeds());
  const std::vector<Placement> from_log = replayed.schedule.all_placements();
  const std::vector<Placement> from_run = committed.all_placements();
  ASSERT_EQ(from_log.size(), from_run.size());
  for (std::size_t i = 0; i < from_log.size(); ++i) {
    EXPECT_EQ(from_log[i].job, from_run[i].job) << "placement " << i;
    EXPECT_EQ(from_log[i].machine, from_run[i].machine) << "placement " << i;
    EXPECT_DOUBLE_EQ(from_log[i].start, from_run[i].start)
        << "placement " << i;
    EXPECT_DOUBLE_EQ(from_log[i].duration, from_run[i].duration)
        << "placement " << i;
  }

  if (injector.fired() > 0) ++*crashes_fired;
  std::filesystem::remove_all(config.wal_dir);
}

TEST(CrashRecoveryProperty, DeltaCommitmentSurvivesTheSameCrashSites) {
  ModelConfig model;
  model.model = CommitModel::kDelta;
  model.delta = 0.5;
  model.machines = kMachines;
  int crashes_fired = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    run_model_crash_recovery(seed, model, "delta", &crashes_fired);
  }
  EXPECT_GE(crashes_fired, 2);
}

TEST(CrashRecoveryProperty, RelatedMachinesRestoreTheirSpeeds) {
  ModelConfig model;
  model.model = CommitModel::kOnArrival;
  model.arrival = ArrivalPolicy::kGreedyBestFit;
  model.machines = kMachines;
  model.speeds = SpeedProfile::two_tier(kMachines, 1, 4.0).speeds();
  int crashes_fired = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
    run_model_crash_recovery(seed, model, "speeds", &crashes_fired);
  }
  EXPECT_GE(crashes_fired, 2);
}

TEST(CrashRecoveryProperty, DeltaOnRelatedMachinesRoundTrips) {
  ModelConfig model;
  model.model = CommitModel::kDelta;
  model.delta = 1.0;
  model.machines = kMachines;
  model.speeds = SpeedProfile::geometric(kMachines, 0.75).speeds();
  int crashes_fired = 0;
  for (const std::uint64_t seed : {5ull, 6ull}) {
    run_model_crash_recovery(seed, model, "delta_speeds", &crashes_fired);
  }
  (void)crashes_fired;  // two seeds may both miss; the round trip is the point
}

}  // namespace
}  // namespace slacksched
