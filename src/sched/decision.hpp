/// \file
/// The admission decision type. Upon a job's submission a commit-on-arrival
/// scheduler either rejects it or irrevocably fixes machine and start time
/// (the temporal and spatial commitment of the non-preemptive model). A
/// deferred-commitment scheduler (models/delta_commit.hpp) may instead
/// answer defer(): the job is held tentative and its binding accept/reject
/// arrives later through OnlineScheduler::advance_to.
#pragma once

#include <string>

#include "common/time.hpp"

namespace slacksched {

/// An admission decision: reject, accept(machine, start), or — only from
/// schedulers whose commitment model allows deferral — "not decided yet".
struct Decision {
  bool accepted = false;
  int machine = -1;        ///< 0-based machine index when accepted
  TimePoint start = 0.0;   ///< committed start time when accepted
  /// True iff the scheduler has not decided yet (deferred-commitment
  /// models only); accepted/machine/start are meaningless while set.
  bool deferred = false;

  [[nodiscard]] static Decision reject() { return Decision{}; }

  [[nodiscard]] static Decision accept(int machine, TimePoint start) {
    Decision d;
    d.accepted = true;
    d.machine = machine;
    d.start = start;
    return d;
  }

  [[nodiscard]] static Decision defer() {
    Decision d;
    d.deferred = true;
    return d;
  }

  [[nodiscard]] std::string to_string() const {
    if (deferred) return "defer";
    if (!accepted) return "reject";
    return "accept(machine=" + std::to_string(machine) +
           ", start=" + std::to_string(start) + ")";
  }

  friend bool operator==(const Decision&, const Decision&) = default;
};

}  // namespace slacksched
