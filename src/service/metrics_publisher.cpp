#include "service/metrics_publisher.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace slacksched {

MetricsPublisher::MetricsPublisher(PublisherConfig config, Collector collector)
    : config_(std::move(config)), collector_(std::move(collector)) {
  SLACKSCHED_EXPECTS(!config_.path.empty());
  SLACKSCHED_EXPECTS(config_.period.count() >= 1);
  SLACKSCHED_EXPECTS(config_.jitter >= 0.0 && config_.jitter < 1.0);
  SLACKSCHED_EXPECTS(collector_ != nullptr);
}

MetricsPublisher::~MetricsPublisher() { stop(); }

void MetricsPublisher::start() {
  std::lock_guard lock(mutex_);
  SLACKSCHED_EXPECTS(!started_);
  started_ = true;
  thread_ = std::thread([this] { loop(); });
}

void MetricsPublisher::stop() {
  {
    std::lock_guard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    stopping_.store(true, std::memory_order_release);
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // The final page: written after the thread is gone (and, in the
  // gateway, after the shards have quiesced), so the file on disk equals
  // the final counter values exactly.
  (void)publish_now();
}

bool MetricsPublisher::publish_now() {
  const std::string page = collector_();
  const std::string tmp = config_.path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::lock_guard lock(mutex_);
      last_error_ = "open failed: " + tmp;
      return false;
    }
    out << page;
    out.flush();
    if (!out) {
      std::lock_guard lock(mutex_);
      last_error_ = "write failed: " + tmp;
      return false;
    }
  }
  // POSIX rename over an existing file is atomic: a concurrent scraper
  // sees either the previous complete page or this one, never a mix.
  if (std::rename(tmp.c_str(), config_.path.c_str()) != 0) {
    std::lock_guard lock(mutex_);
    last_error_ = "rename failed: " + std::string(std::strerror(errno));
    return false;
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::string MetricsPublisher::last_error() const {
  std::lock_guard lock(mutex_);
  return last_error_;
}

void MetricsPublisher::loop() {
  SplitMix64 jitter(config_.jitter_seed);
  while (!stopping_.load(std::memory_order_acquire)) {
    // Draw the sleep from [period*(1-j), period*(1+j)] each cycle so
    // co-started publishers de-correlate instead of stampeding together.
    const double base = static_cast<double>(config_.period.count());
    const double u =
        static_cast<double>(jitter.next() >> 11) * 0x1.0p-53;  // [0, 1)
    const auto sleep = std::chrono::milliseconds(static_cast<std::int64_t>(
        base * (1.0 - config_.jitter + 2.0 * config_.jitter * u)));
    {
      std::unique_lock lock(mutex_);
      cv_.wait_for(lock, sleep, [this] {
        return stopping_.load(std::memory_order_acquire);
      });
    }
    if (stopping_.load(std::memory_order_acquire)) break;  // stop() publishes
    (void)publish_now();
  }
}

}  // namespace slacksched
