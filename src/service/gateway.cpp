#include "service/gateway.hpp"

#include <algorithm>
#include <utility>

#include "common/expects.hpp"

namespace slacksched {

std::string to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kEnqueued:
      return "enqueued";
    case SubmitStatus::kRejectedQueueFull:
      return "rejected: shard queue full (backpressure)";
    case SubmitStatus::kRejectedClosed:
      return "rejected: gateway closed";
  }
  return "unknown";
}

bool GatewayResult::clean() const {
  return std::all_of(shards.begin(), shards.end(),
                     [](const RunResult& r) { return r.clean(); });
}

std::string GatewayResult::first_violation() const {
  for (const RunResult& r : shards) {
    if (!r.clean()) return r.commitment_violation;
  }
  return {};
}

AdmissionGateway::AdmissionGateway(const GatewayConfig& config,
                                   const ShardSchedulerFactory& factory)
    : config_(config),
      metrics_(config.shards),
      router_(config.routing, config.shards) {
  SLACKSCHED_EXPECTS(config.shards >= 1);
  SLACKSCHED_EXPECTS(config.queue_capacity >= 1);
  SLACKSCHED_EXPECTS(config.batch_size >= 1);
  SLACKSCHED_EXPECTS(factory != nullptr);
  ShardConfig shard_config;
  shard_config.queue_capacity = config.queue_capacity;
  shard_config.batch_size = config.batch_size;
  shard_config.halt_on_violation = config.halt_shard_on_violation;
  shard_config.record_decisions = config.record_decisions;
  shards_.reserve(static_cast<std::size_t>(config.shards));
  for (int s = 0; s < config.shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(s, factory(s), shard_config, metrics_));
  }
  for (auto& shard : shards_) shard->start();
}

AdmissionGateway::~AdmissionGateway() {
  if (!finished_.load()) {
    for (auto& shard : shards_) shard->close();
    // ~Shard joins.
  }
}

SubmitStatus AdmissionGateway::submit(const Job& job) {
  if (finished_.load(std::memory_order_acquire)) {
    return SubmitStatus::kRejectedClosed;
  }
  const int shard = router_.route(job);
  return shards_[static_cast<std::size_t>(shard)]->try_enqueue(
             job, Shard::Clock::now())
             ? SubmitStatus::kEnqueued
             : SubmitStatus::kRejectedQueueFull;
}

BatchSubmitResult AdmissionGateway::submit_batch(
    std::span<const Job> jobs, std::vector<SubmitStatus>* statuses) {
  BatchSubmitResult result;
  if (statuses != nullptr) {
    statuses->assign(jobs.size(), SubmitStatus::kRejectedClosed);
  }
  if (finished_.load(std::memory_order_acquire)) {
    result.rejected_closed = jobs.size();
    return result;
  }
  // Route every job first, preserving submission order within each shard's
  // group, then hand each group to its shard under one queue lock.
  std::vector<std::vector<std::uint32_t>> groups(
      static_cast<std::size_t>(config_.shards));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    groups[static_cast<std::size_t>(router_.route(jobs[i]))].push_back(
        static_cast<std::uint32_t>(i));
  }
  const auto now = Shard::Clock::now();
  for (int s = 0; s < config_.shards; ++s) {
    const auto& group = groups[static_cast<std::size_t>(s)];
    if (group.empty()) continue;
    const std::size_t taken =
        shards_[static_cast<std::size_t>(s)]->try_enqueue_batch(
            jobs.data(), group.data(), group.size(), now);
    result.enqueued += taken;
    result.rejected_queue_full += group.size() - taken;
    if (statuses != nullptr) {
      for (std::size_t g = 0; g < group.size(); ++g) {
        (*statuses)[group[g]] = g < taken ? SubmitStatus::kEnqueued
                                          : SubmitStatus::kRejectedQueueFull;
      }
    }
  }
  return result;
}

GatewayResult AdmissionGateway::finish() {
  SLACKSCHED_EXPECTS(!finished_.exchange(true, std::memory_order_acq_rel));
  for (auto& shard : shards_) shard->close();
  for (auto& shard : shards_) shard->join();

  GatewayResult result;
  result.shards.reserve(shards_.size());
  for (auto& shard : shards_) {
    result.shards.push_back(shard->take_result());
  }
  for (const RunResult& r : result.shards) {
    result.merged.submitted += r.metrics.submitted;
    result.merged.accepted += r.metrics.accepted;
    result.merged.rejected += r.metrics.rejected;
    result.merged.accepted_volume += r.metrics.accepted_volume;
    result.merged.rejected_volume += r.metrics.rejected_volume;
    result.merged.makespan = std::max(result.merged.makespan,
                                      r.metrics.makespan);
  }
  result.metrics = metrics_.snapshot();
  return result;
}

}  // namespace slacksched
