// Cross-module integration tests: Theorem 2's guarantee checked against
// the exact offline optimum on small random instances, algorithm-vs-
// algorithm orderings on realistic workloads, and end-to-end pipelines
// (generate -> serialize -> run -> validate -> compare).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "adversary/lower_bound_game.hpp"
#include "baselines/delayed_commit.hpp"
#include "baselines/edf_preemptive.hpp"
#include "baselines/greedy.hpp"
#include "common/thread_pool.hpp"
#include "core/classify_select.hpp"
#include "core/threshold.hpp"
#include "offline/exact.hpp"
#include "offline/upper_bound.hpp"
#include "sched/engine.hpp"
#include "sched/validator.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace slacksched {
namespace {

/// Theorem 2 as an empirical property: on every small random instance the
/// ratio OPT / Threshold stays within the proven bound.
class Theorem2Sweep
    : public ::testing::TestWithParam<std::tuple<int, double, std::uint64_t>> {
};

TEST_P(Theorem2Sweep, ThresholdNeverExceedsItsBoundAgainstExactOpt) {
  const auto [m, eps, seed] = GetParam();
  WorkloadConfig config;
  config.n = 12;
  config.eps = eps;
  config.arrival_rate = 1.0 * m;
  config.size_min = 1.0;
  config.size_max = 8.0;
  config.slack = SlackModel::kTight;  // hardest case
  config.seed = seed;
  const Instance inst = generate_workload(config);

  ThresholdScheduler alg(eps, m);
  const RunResult run = run_online(alg, inst);
  ASSERT_TRUE(run.clean());
  const ExactResult opt = exact_optimal_load(inst, m);

  ASSERT_GT(run.metrics.accepted_volume, 0.0);
  const double ratio = opt.value / run.metrics.accepted_volume;
  const double bound = alg.solution().theorem2_bound();
  EXPECT_LE(ratio, bound + 1e-6)
      << "m=" << m << " eps=" << eps << " seed=" << seed
      << " opt=" << opt.value << " alg=" << run.metrics.accepted_volume;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Theorem2Sweep,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.05, 0.25, 0.8),
                       ::testing::Values(11, 22, 33, 44)));

TEST(Integration, AdversaryInstanceReplaysThroughEngine) {
  // The adversary's interactive game and the batch engine agree: replaying
  // the recorded instance through the engine reproduces the decisions.
  const double eps = 0.15;
  const int m = 3;
  AdversaryConfig config;
  config.eps = eps;
  config.m = m;
  config.beta = 1e-4;
  LowerBoundGame game(config);
  ThresholdScheduler alg(eps, m);
  const GameResult live = game.play(alg);

  const RunResult replay = run_online(alg, live.instance);
  ASSERT_TRUE(replay.clean());
  EXPECT_NEAR(replay.metrics.accepted_volume, live.alg_volume, 1e-9);
}

TEST(Integration, TraceSerializationPreservesAlgorithmBehaviour) {
  WorkloadConfig config;
  config.n = 250;
  config.eps = 0.1;
  config.seed = 1212;
  const Instance original = generate_workload(config);

  std::ostringstream buffer;
  write_trace(buffer, original);
  std::istringstream in(buffer.str());
  const Instance loaded = read_trace(in);

  ThresholdScheduler alg(0.1, 2);
  const double volume_original =
      run_online(alg, original).metrics.accepted_volume;
  const double volume_loaded = run_online(alg, loaded).metrics.accepted_volume;
  EXPECT_DOUBLE_EQ(volume_original, volume_loaded);
}

TEST(Integration, PreemptionDominatesOnTightWorkloads) {
  // The DasGupta-Palis machine model (preemption, no migration) should
  // accept at least as much volume as non-preemptive greedy on workloads
  // where commitment hurts.
  WorkloadConfig config = scenario("overload", 0.05, 404);
  config.n = 600;
  const Instance inst = generate_workload(config);

  GreedyScheduler greedy(2);
  const double greedy_volume =
      run_online(greedy, inst).metrics.accepted_volume;
  const double edf_volume =
      run_edf_preemptive(inst, 2).metrics.accepted_volume;
  EXPECT_GE(edf_volume, 0.9 * greedy_volume);
}

TEST(Integration, DelayedCommitmentBeatsImmediateOnBursts) {
  // Bursts of simultaneous jobs: waiting in a queue salvages jobs an
  // immediate-commitment greedy must turn away.
  WorkloadConfig config;
  config.n = 500;
  config.eps = 1.0;
  config.arrival = ArrivalModel::kBursty;
  config.burst_every = 20.0;
  config.burst_size = 30;
  config.arrival_rate = 0.5;
  config.size_min = 1.0;
  config.size_max = 4.0;
  config.slack = SlackModel::kUniformFactor;
  config.slack_hi = 1.0;
  config.seed = 31337;
  const Instance inst = generate_workload(config);

  GreedyScheduler greedy(2);
  const double greedy_volume =
      run_online(greedy, inst).metrics.accepted_volume;
  const double queue_volume =
      run_delayed_commit(inst, 2).metrics.accepted_volume;
  EXPECT_GE(queue_volume, greedy_volume * 0.95);
}

TEST(Integration, EveryOnlineAlgorithmStaysBelowFractionalUpperBound) {
  WorkloadConfig config;
  config.n = 300;
  config.eps = 0.1;
  config.arrival_rate = 4.0;
  config.seed = 777;
  const Instance inst = generate_workload(config);
  const double ub = preemptive_fractional_upper_bound(inst, 2);

  ThresholdScheduler threshold(0.1, 2);
  GreedyScheduler greedy(2);
  EXPECT_LE(run_online(threshold, inst).metrics.accepted_volume, ub + 1e-6);
  EXPECT_LE(run_online(greedy, inst).metrics.accepted_volume, ub + 1e-6);
  EXPECT_LE(run_delayed_commit(inst, 2).metrics.accepted_volume, ub + 1e-6);
  EXPECT_LE(run_edf_preemptive(inst, 2).metrics.accepted_volume, ub + 1e-6);
}

TEST(Integration, ParallelSweepMatchesSequentialSweep) {
  // The benches' parallel harness produces bit-identical results to a
  // sequential loop (determinism contract of the thread pool + RNG fork).
  const std::size_t cells = 24;
  auto simulate = [](std::size_t i) {
    WorkloadConfig config;
    config.n = 150;
    config.eps = 0.05 + 0.03 * static_cast<double>(i % 6);
    config.seed = 1000 + i;
    const Instance inst = generate_workload(config);
    ThresholdScheduler alg(config.eps, 2);
    return run_online(alg, inst).metrics.accepted_volume;
  };

  std::vector<double> sequential;
  sequential.reserve(cells);
  for (std::size_t i = 0; i < cells; ++i) sequential.push_back(simulate(i));

  ThreadPool pool(4);
  const std::vector<double> parallel =
      parallel_map<double>(pool, cells, simulate);
  EXPECT_EQ(parallel, sequential);
}

TEST(Integration, ClassifySelectStaysWithinVirtualBound) {
  // The single real machine can never accept more than its virtual machine
  // accepted, and the union over machines equals the virtual total.
  WorkloadConfig config;
  config.n = 300;
  config.eps = 0.05;
  config.arrival_rate = 5.0;
  config.seed = 2024;
  const Instance inst = generate_workload(config);

  const int m = classify_select_default_machines(0.05);
  ThresholdScheduler virtual_alg(0.05, m);
  const RunResult virtual_run = run_online(virtual_alg, inst);

  double union_volume = 0.0;
  for (int seed = 0; seed < 50; ++seed) {
    ClassifySelectConfig cs;
    cs.eps = 0.05;
    cs.seed = static_cast<std::uint64_t>(seed);
    ClassifySelectScheduler alg(cs);
    const double v = run_online(alg, inst).metrics.accepted_volume;
    EXPECT_LE(v, virtual_run.metrics.accepted_volume + 1e-9);
    union_volume = std::max(union_volume, v);
  }
  EXPECT_GT(union_volume, 0.0);
}

}  // namespace
}  // namespace slacksched
