// REPL: cost of commit-log replication, and how fast a follower takes
// over when the leader dies.
//
// Phase 1 (overhead): replays the same synthetic stream through a durable
// 2-shard gateway four times — no replication (the baseline), then each
// replication ack mode streaming into an in-process loopback
// ReplicaServer. Every replicated run must end with the follower's logs
// holding exactly the leader's records; the jobs/sec column is the price
// of that guarantee. Expectation: async is within noise of the baseline,
// ack-on-batch pays one follower round-trip per batch, ack-on-commit pays
// one per accepted job and lands well below the others.
//
// Phase 2 (failover): repeatedly runs leader traffic into a follower,
// destroys the leader mid-stream (the process-death model: heartbeats
// stop, the session drops), and measures two latencies from the moment of
// death: detect (FailoverDriver breaks the circuit) and serve (a promoted
// gateway renders its first admission decision from the replica's logs).
// Reports p50/p99 across iterations. Emits BENCH_repl.json, gated by
// scripts/perf_check.py --repl-json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bench_env.hpp"
#include "core/threshold.hpp"
#include "replication/failover.hpp"
#include "replication/replica_server.hpp"
#include "service/gateway.hpp"
#include "workload/generators.hpp"

namespace {

using namespace slacksched;

constexpr double kEps = 0.1;
constexpr int kMachinesPerShard = 8;
constexpr int kShards = 2;

ShardSchedulerFactory factory() {
  return [](int) {
    return std::make_unique<ThresholdScheduler>(kEps, kMachinesPerShard);
  };
}

std::string fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("bench_repl_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

void drop_dir(const std::string& dir) { std::filesystem::remove_all(dir); }

struct ModeRun {
  std::string mode;  ///< "baseline" or a ReplAckMode name
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  std::uint64_t leader_records = 0;
  std::uint64_t follower_records = 0;
  bool clean = false;
};

/// One full replay of `instance` through a durable gateway; `ack_mode`
/// empty means the unreplicated baseline.
ModeRun run_mode(const Instance& instance,
                 std::optional<repl::ReplAckMode> ack_mode) {
  const std::string tag =
      ack_mode ? std::string(repl::to_string(*ack_mode)) : "baseline";
  ModeRun run;
  run.mode = tag;
  run.jobs = instance.size();

  const std::string leader_dir = fresh_dir("leader_" + tag);
  std::optional<repl::ReplicaServerConfig> replica_config;
  std::unique_ptr<repl::ReplicaServer> replica;
  if (ack_mode) {
    replica_config.emplace();
    replica_config->dir = fresh_dir("replica_" + tag);
    replica_config->shards = kShards;
    replica = std::make_unique<repl::ReplicaServer>(*replica_config);
  }

  GatewayConfig config;
  config.shards = kShards;
  config.queue_capacity = 8192;
  config.batch_size = 512;
  config.routing = RoutingPolicy::kHash;
  config.record_decisions = false;
  config.wal_dir = leader_dir;
  if (ack_mode) {
    config.replication.emplace();
    config.replication->port = replica->port();
    config.replication->ack_mode = *ack_mode;
  }

  const auto start = std::chrono::steady_clock::now();
  GatewayResult result = [&] {
    AdmissionGateway gateway(config, factory());
    for (const Job& job : instance.jobs()) (void)gateway.submit(job);
    return gateway.finish();
  }();
  const auto stop = std::chrono::steady_clock::now();

  run.seconds = std::chrono::duration<double>(stop - start).count();
  run.jobs_per_sec = static_cast<double>(run.jobs) / run.seconds;
  run.leader_records = result.merged.accepted;
  if (replica) {
    for (int s = 0; s < kShards; ++s) {
      run.follower_records += replica->watermark(s);
    }
    replica->stop();
  }
  // Clean means the drain validated AND (when replicating) the follower
  // holds every accepted record — an orderly close drains in every mode.
  run.clean = result.clean() &&
              (!ack_mode || run.follower_records == run.leader_records);
  drop_dir(leader_dir);
  if (replica_config) drop_dir(replica_config->dir);
  return run;
}

struct FailoverSample {
  double detect_ms = 0.0;  ///< leader death -> circuit broken
  double serve_ms = 0.0;   ///< leader death -> first promoted decision
};

/// One leader-death drill: traffic, kill, detect, promote, first decision.
FailoverSample run_failover_once(const Instance& instance, int iteration) {
  const std::string tag = std::to_string(iteration);
  const std::string leader_dir = fresh_dir("fo_leader_" + tag);
  repl::ReplicaServerConfig replica_config;
  replica_config.dir = fresh_dir("fo_replica_" + tag);
  replica_config.shards = 1;
  repl::ReplicaServer replica(replica_config);

  GatewayConfig config;
  config.shards = 1;
  config.queue_capacity = 8192;
  config.batch_size = 256;
  config.record_decisions = false;
  config.wal_dir = leader_dir;
  config.replication.emplace();
  config.replication->port = replica.port();
  config.replication->ack_mode = repl::ReplAckMode::kAckOnBatch;
  config.replication->heartbeat_interval = std::chrono::milliseconds(5);
  auto gateway = std::make_unique<AdmissionGateway>(config, factory());
  for (const Job& job : instance.jobs()) (void)gateway->submit(job);

  repl::FailoverConfig failover;
  failover.poll_interval = std::chrono::milliseconds(1);
  failover.stall_threshold = std::chrono::milliseconds(25);
  failover.down_threshold = std::chrono::milliseconds(100);
  failover.backoff_initial = std::chrono::milliseconds(5);
  failover.backoff_max = std::chrono::milliseconds(20);
  failover.jitter_seed = 0xb0b0b0b0ULL + static_cast<std::uint64_t>(iteration);
  repl::FailoverDriver driver(replica, failover, [] {});
  driver.start();

  // Node death: drain + destroy stops the heartbeats and drops the
  // session. The clock starts here.
  (void)gateway->finish();
  const auto died = std::chrono::steady_clock::now();
  gateway.reset();
  while (!driver.circuit_broken()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto detected = std::chrono::steady_clock::now();
  driver.stop();
  replica.stop();

  // Promote the replica's logs and clock the first rendered decision.
  std::mutex mutex;
  std::condition_variable served_cv;
  bool served = false;
  std::chrono::steady_clock::time_point first_decision;
  GatewayConfig promoted_config;
  promoted_config.shards = 1;
  promoted_config.queue_capacity = 8192;
  promoted_config.batch_size = 256;
  promoted_config.record_decisions = false;
  promoted_config.wal_dir = replica_config.dir;
  promoted_config.on_decision = [&](int, const Job&, const Decision&,
                                    std::uint64_t) {
    std::lock_guard lock(mutex);
    if (!served) {
      served = true;
      first_decision = std::chrono::steady_clock::now();
      served_cv.notify_one();
    }
  };
  repl::PromotionResult promoted =
      repl::promote_replica(promoted_config, factory());
  if (!promoted.ok) {
    std::fprintf(stderr, "promotion failed: %s\n", promoted.error.c_str());
    std::exit(1);
  }
  Job probe;
  probe.id = static_cast<JobId>(1'000'000 + iteration);
  probe.release = 0.0;
  probe.proc = 1.0;
  probe.deadline = 1e9;
  (void)promoted.gateway->submit(probe);
  {
    std::unique_lock lock(mutex);
    served_cv.wait(lock, [&] { return served; });
  }
  (void)promoted.gateway->finish();
  drop_dir(leader_dir);
  drop_dir(replica_config.dir);

  FailoverSample sample;
  sample.detect_ms =
      std::chrono::duration<double, std::milli>(detected - died).count();
  sample.serve_ms =
      std::chrono::duration<double, std::milli>(first_decision - died).count();
  return sample;
}

double percentile(std::vector<double> values, double p) {
  std::sort(values.begin(), values.end());
  const std::size_t idx = static_cast<std::size_t>(
      p * static_cast<double>(values.size() - 1) + 0.5);
  return values[std::min(idx, values.size() - 1)];
}

void write_json(const std::vector<ModeRun>& modes,
                const std::vector<FailoverSample>& samples,
                const bench::BenchEnv& env) {
  std::vector<double> detect;
  std::vector<double> serve;
  for (const FailoverSample& s : samples) {
    detect.push_back(s.detect_ms);
    serve.push_back(s.serve_ms);
  }
  std::ofstream out("BENCH_repl.json");
  out << "{\n"
      << "  \"bench\": \"replication\",\n"
      << "  \"scheduler\": \"Threshold(eps=" << kEps
      << ", m=" << kMachinesPerShard << " per shard)\",\n"
      << "  \"shards\": " << kShards << ",\n"
      << env.json_fields()
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < modes.size(); ++i) {
    const ModeRun& r = modes[i];
    out << "    {\"mode\": \"" << r.mode << "\""
        << ", \"jobs\": " << r.jobs
        << ", \"seconds\": " << r.seconds
        << ", \"jobs_per_sec\": " << r.jobs_per_sec
        << ", \"leader_records\": " << r.leader_records
        << ", \"follower_records\": " << r.follower_records
        << ", \"clean\": " << (r.clean ? "true" : "false") << "}"
        << (i + 1 < modes.size() ? "," : "") << "\n";
  }
  out << "  ],\n"
      << "  \"failover\": {\n"
      << "    \"iterations\": " << samples.size() << ",\n"
      << "    \"detect_ms_p50\": " << percentile(detect, 0.50) << ",\n"
      << "    \"detect_ms_p99\": " << percentile(detect, 0.99) << ",\n"
      << "    \"serve_ms_p50\": " << percentile(serve, 0.50) << ",\n"
      << "    \"serve_ms_p99\": " << percentile(serve, 0.99) << "\n"
      << "  }\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Optional override: repl_failover [jobs], default 200k per mode run;
  // smoke-test with e.g. 20000.
  std::size_t n = 200'000;
  if (argc > 1) {
    char* end = nullptr;
    n = static_cast<std::size_t>(std::strtoull(argv[1], &end, 10));
    if (end == argv[1] || *end != '\0' || n == 0) {
      std::fprintf(stderr, "usage: %s [jobs>0]  (got '%s')\n", argv[0],
                   argv[1]);
      return 2;
    }
  }

  std::printf("REPL: commit-log replication overhead + failover drill\n");
  std::printf("  jobs=%zu  scheduler=Threshold(eps=%.2f, m=%d/shard)  "
              "shards=%d\n\n",
              n, kEps, kMachinesPerShard, kShards);

  WorkloadConfig wconfig;
  wconfig.n = n;
  wconfig.eps = kEps;
  wconfig.arrival_rate = 4.0;
  wconfig.seed = 11;
  const Instance instance = generate_workload(wconfig);

  std::printf("  %-14s  %10s  %14s  %14s  %14s  %s\n", "mode", "seconds",
              "jobs/sec", "leader-recs", "follower-recs", "status");
  std::vector<ModeRun> modes;
  bool all_clean = true;
  const std::optional<repl::ReplAckMode> kModes[] = {
      std::nullopt, repl::ReplAckMode::kAsync, repl::ReplAckMode::kAckOnBatch,
      repl::ReplAckMode::kAckOnCommit};
  for (const auto& mode : kModes) {
    const ModeRun run = run_mode(instance, mode);
    std::printf("  %-14s  %10.3f  %14.0f  %14llu  %14llu  %s\n",
                run.mode.c_str(), run.seconds, run.jobs_per_sec,
                static_cast<unsigned long long>(run.leader_records),
                static_cast<unsigned long long>(run.follower_records),
                run.clean ? "clean" : "NOT CLEAN");
    all_clean = all_clean && run.clean;
    modes.push_back(run);
  }

  // The failover drill streams a smaller instance per iteration — the
  // latencies under test are detection + promotion, not replay volume.
  WorkloadConfig fconfig;
  fconfig.n = std::max<std::size_t>(n / 20, 1000);
  fconfig.eps = kEps;
  fconfig.arrival_rate = 4.0;
  fconfig.seed = 13;
  const Instance fo_instance = generate_workload(fconfig);
  constexpr int kIterations = 13;
  std::printf("\n  failover drill (%d iterations, %zu jobs each):\n",
              kIterations, fo_instance.size());
  std::vector<FailoverSample> samples;
  for (int i = 0; i < kIterations; ++i) {
    samples.push_back(run_failover_once(fo_instance, i));
  }
  std::vector<double> detect;
  std::vector<double> serve;
  for (const FailoverSample& s : samples) {
    detect.push_back(s.detect_ms);
    serve.push_back(s.serve_ms);
  }
  std::printf("    detect  p50=%.2fms  p99=%.2fms\n",
              percentile(detect, 0.50), percentile(detect, 0.99));
  std::printf("    serve   p50=%.2fms  p99=%.2fms\n",
              percentile(serve, 0.50), percentile(serve, 0.99));

  write_json(modes, samples, bench::BenchEnv::detect(1, /*pinned=*/false,
                                                     "closed"));
  std::printf("\n  wrote BENCH_repl.json\n");

  if (!all_clean) {
    std::fprintf(stderr, "FAIL: at least one mode was not clean\n");
    return 1;
  }
  return 0;
}
