// Decision-log serialization and offline auditing.
//
// A decision log (one row per submitted job: accepted?, machine, start)
// together with the original trace fully determines a run. Persisting the
// log lets operators archive what an admission controller promised and
// re-audit it later: reconstruct_schedule() replays the log against the
// instance with full legality checking, and the validator then re-proves
// every deadline. Tampered or inconsistent logs are rejected.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "job/instance.hpp"
#include "sched/engine.hpp"

namespace slacksched {

/// Writes `id,accepted,machine,start` rows with round-trip precision.
void write_decisions(std::ostream& out,
                     const std::vector<DecisionRecord>& decisions);

/// A parsed decision row, keyed by job id.
struct DecisionRow {
  JobId id = 0;
  Decision decision;
};

/// Reads a log written by write_decisions. Throws PreconditionError on
/// malformed input.
[[nodiscard]] std::vector<DecisionRow> read_decisions(std::istream& in);

/// Replays a decision log against its instance: every row must reference
/// an instance job (each at most once), and every acceptance must be a
/// legal commitment (release/deadline/no overlap). Returns the committed
/// schedule; throws PreconditionError on any inconsistency.
[[nodiscard]] Schedule reconstruct_schedule(
    const Instance& instance, const std::vector<DecisionRow>& decisions);

/// Convenience file variants.
void write_decisions_file(const std::string& path,
                          const std::vector<DecisionRecord>& decisions);
[[nodiscard]] std::vector<DecisionRow> read_decisions_file(
    const std::string& path);

}  // namespace slacksched
