// Exhaustive decision-tree verification of Theorem 1.
//
// test_adversary.cpp checks the paths real algorithms take; here a
// scripted player follows EVERY accept/reject pattern through the
// adversary's tree (the full Fig. 2), and each leaf's achieved ratio must
// be >= c(eps, m) - O(beta). This verifies the lower bound not just
// against our algorithms but against every deterministic behaviour an
// algorithm could exhibit in the game.
#include <gtest/gtest.h>

#include <algorithm>

#include "adversary/lower_bound_game.hpp"
#include "common/expects.hpp"
#include "sched/validator.hpp"

namespace slacksched {
namespace {

/// Follows a scripted accept/reject plan: accepts the first job of a
/// "round" (a maximal run of identical submissions) iff the plan says so
/// and a legal slot exists (earliest start on the least loaded feasible
/// machine). The plan is indexed by round; exhausted plans reject.
class ScriptedPlayer final : public OnlineScheduler {
 public:
  ScriptedPlayer(int machines, std::vector<bool> plan)
      : machines_(machines), plan_(std::move(plan)), mirror_(machines) {}

  Decision on_arrival(const Job& job) override {
    // Detect round boundaries: a new round starts when the job parameters
    // change from the previous submission.
    if (!last_job_ || !(last_job_->proc == job.proc &&
                        last_job_->deadline == job.deadline &&
                        last_job_->release == job.release)) {
      ++round_;
      accepted_this_round_ = false;
    }
    last_job_ = job;

    const std::size_t index = static_cast<std::size_t>(round_);
    const bool want =
        index < plan_.size() ? plan_[index] : false;
    if (!want || accepted_this_round_) return Decision::reject();

    // Earliest-start legal slot.
    int best = -1;
    TimePoint best_start = 0.0;
    for (int machine = 0; machine < machines_; ++machine) {
      const TimePoint start =
          std::max(job.release, mirror_.frontier(machine));
      if (!approx_le(start + job.proc, job.deadline)) continue;
      if (best < 0 || start < best_start) {
        best = machine;
        best_start = start;
      }
    }
    if (best < 0) return Decision::reject();
    mirror_.commit(job, best, best_start);
    accepted_this_round_ = true;
    return Decision::accept(best, best_start);
  }

  int machines() const override { return machines_; }

  void reset() override {
    mirror_ = Schedule(machines_);
    last_job_.reset();
    round_ = -1;
    accepted_this_round_ = false;
  }

  std::string name() const override { return "Scripted"; }

 private:
  int machines_;
  std::vector<bool> plan_;
  Schedule mirror_;
  std::optional<Job> last_job_;
  int round_ = -1;
  bool accepted_this_round_ = false;
};

/// Plays every accept/reject plan of the given length and checks the
/// Theorem-1 inequality at each leaf.
void verify_all_paths(double eps, int m) {
  AdversaryConfig config;
  config.eps = eps;
  config.m = m;
  config.beta = 1e-4;
  const LowerBoundGame game(config);
  const double c = game.prediction().c;
  const double tolerance = 0.03 * c;

  // Rounds: 1 (phase-1 job) + up to m phase-2 subphases + up to m phase-3
  // subphases. Plans beyond the actually reached rounds are harmless.
  const int rounds = 1 + 2 * m;
  std::size_t leaves = 0;
  double min_ratio = std::numeric_limits<double>::infinity();
  for (std::uint32_t mask = 0; mask < (1u << rounds); ++mask) {
    std::vector<bool> plan(static_cast<std::size_t>(rounds));
    for (int bit = 0; bit < rounds; ++bit) {
      plan[static_cast<std::size_t>(bit)] = (mask >> bit) & 1u;
    }
    ScriptedPlayer player(m, plan);
    const GameResult result = game.play(player);
    ++leaves;

    ASSERT_TRUE(
        validate_schedule(result.instance, result.online_schedule).ok);
    ASSERT_TRUE(
        validate_schedule(result.instance, result.optimal_schedule).ok);

    if (result.unbounded()) continue;  // rejected J1: ratio infinite
    EXPECT_GE(result.ratio, c - tolerance)
        << "eps=" << eps << " m=" << m << " plan mask=" << mask
        << " stop=" << to_string(result.stop) << "/" << result.stop_subphase;
    min_ratio = std::min(min_ratio, result.ratio);
  }
  // Some plan must achieve (close to) the optimum play c itself — the
  // bound is tight over the tree.
  EXPECT_LE(min_ratio, c + tolerance)
      << "eps=" << eps << " m=" << m << " over " << leaves << " plans";
}

class ExhaustiveTree
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ExhaustiveTree, EveryLeafRespectsTheLowerBound) {
  const auto [m, eps] = GetParam();
  verify_all_paths(eps, m);
}

// m <= 3 keeps the number of plans (2^(2m+1)) and game replays small.
INSTANTIATE_TEST_SUITE_P(
    Grid, ExhaustiveTree,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0.03, 0.12, 0.3, 0.6, 1.0)));

TEST(ExhaustiveTree, AcceptEverythingPlanWalksTheWholeTree) {
  // The all-accept plan accepts J1 and one job per subphase until the
  // machines fill: the game must end in phase 3 with every machine used.
  const int m = 3;
  AdversaryConfig config;
  config.eps = 0.12;
  config.m = m;
  config.beta = 1e-4;
  const LowerBoundGame game(config);
  ScriptedPlayer player(m, std::vector<bool>(1 + 2 * m, true));
  const GameResult result = game.play(player);
  EXPECT_EQ(result.stop, GameStop::kPhase3);
  EXPECT_EQ(result.online_schedule.job_count(),
            static_cast<std::size_t>(m));
}

}  // namespace
}  // namespace slacksched
