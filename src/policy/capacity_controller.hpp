/// \file
/// The elastic-capacity control loop: decides, per shard, when to grow the
/// machine pool and when to begin draining a machine for retirement.
///
/// The controller is a pure decision function over observed load — it owns
/// no machines and touches no scheduler. The shard's consumer thread feeds
/// it one observation per consumed batch (frontier utilization = busy
/// machines / active machines at the latest release fed, plus the shed
/// counts the producers accumulated) and applies the returned action
/// through the scheduler's elastic surface (sched/online.hpp):
///
///   kGrow   -> OnlineScheduler::add_machine()
///   kShrink -> OnlineScheduler::begin_retire(retire_candidate())
///
/// Shrink never removes capacity directly: it only marks one machine
/// *retiring* (no new commitments placed on it) and the shard finishes the
/// retirement when that machine's frontier has drained — so an accepted
/// commitment is never broken by a resize, by construction.
///
/// Hysteresis both directions: decisions are made once per full sliding
/// window of observations, the grow and shrink utilization thresholds are
/// separated by a required gap, and every applied resize arms a cooldown
/// of whole windows during which the controller stays quiet. The
/// controller is deterministic in its observation stream (no wall clock,
/// no randomness), which is what lets WAL replay reproduce the exact
/// post-resize machine count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace slacksched {

/// What the controller wants done to the shard's machine pool.
enum class CapacityAction : std::uint8_t {
  kNone,    ///< stay at the current capacity
  kGrow,    ///< add one machine
  kShrink,  ///< begin draining one machine for retirement
};

[[nodiscard]] std::string to_string(CapacityAction action);

/// Knobs of the per-shard capacity control loop.
struct CapacityControllerConfig {
  int min_machines = 1;  ///< never shrink below
  int max_machines = 64; ///< never grow above
  /// Observations (consumed batches) per decision window.
  std::size_t window = 8;
  /// Mean frontier utilization at or above which the pool grows.
  double grow_utilization = 0.9;
  /// Mean frontier utilization at or below which a machine begins
  /// retirement. Must sit below grow_utilization by at least
  /// `hysteresis_gap` or the pool would oscillate.
  double shrink_utilization = 0.4;
  /// Minimum required grow_utilization - shrink_utilization.
  double hysteresis_gap = 0.1;
  /// Shed fraction (shed jobs / offered jobs in the window) that forces
  /// growth regardless of utilization: shedding is the loudest signal
  /// that capacity, not placement, is the bottleneck.
  double grow_shed_rate = 0.01;
  /// Decision windows to stay quiet after an applied resize.
  std::size_t cooldown_windows = 2;

  /// One human-readable message per problem; empty means valid.
  [[nodiscard]] std::vector<std::string> validate() const;
};

/// Per-shard sliding-window grow/shrink decider. Single-threaded by
/// design: only the shard's consumer thread observes and decides.
class CapacityController {
 public:
  explicit CapacityController(const CapacityControllerConfig& config);

  /// Feeds one observation: `busy` of `active` machines had outstanding
  /// load at observation time, and `shed` of `offered` producer-side
  /// submissions were class-shed or backpressured since the last call.
  void observe(int busy, int active, std::size_t shed, std::size_t offered);

  /// Renders a decision once a full window of observations is available
  /// (kNone otherwise, and always kNone during cooldown). `active` is the
  /// shard's current active machine count, used against the min/max
  /// bounds. Consumes the window.
  [[nodiscard]] CapacityAction decide(int active);

  /// Tells the controller its last decision was applied: arms the
  /// cooldown. (A decision the shard could not apply — e.g. a retire
  /// already in flight — must NOT arm it.)
  void on_resized();

  [[nodiscard]] const CapacityControllerConfig& config() const {
    return config_;
  }

 private:
  void reset_window();

  CapacityControllerConfig config_;
  std::size_t observations_ = 0;
  double busy_sum_ = 0.0;
  double active_sum_ = 0.0;
  std::size_t shed_sum_ = 0;
  std::size_t offered_sum_ = 0;
  std::size_t cooldown_ = 0;
};

}  // namespace slacksched
