// Tests of the preemptive-migration feasibility oracle and the
// flow-admission migration baseline, plus the random-admission control.
#include <gtest/gtest.h>

#include "baselines/edf_preemptive.hpp"
#include "baselines/greedy.hpp"
#include "baselines/migration_flow.hpp"
#include "baselines/random_admission.hpp"
#include "common/expects.hpp"
#include "offline/feasibility.hpp"
#include "offline/upper_bound.hpp"
#include "sched/engine.hpp"
#include "workload/generators.hpp"

namespace slacksched {
namespace {

Job make_job(JobId id, TimePoint r, Duration p, TimePoint d) {
  Job j;
  j.id = id;
  j.release = r;
  j.proc = p;
  j.deadline = d;
  return j;
}

// ---------- feasibility oracle ----------

TEST(MigrationFeasible, EmptyIsFeasible) {
  EXPECT_TRUE(preemptive_migration_feasible({}, 1, 0.0));
  EXPECT_TRUE(preemptive_migration_feasible_jobs({}, 2));
}

TEST(MigrationFeasible, SingleFragment) {
  EXPECT_TRUE(preemptive_migration_feasible({{1, 2.0, 5.0}}, 1, 0.0));
  EXPECT_FALSE(preemptive_migration_feasible({{1, 2.0, 1.5}}, 1, 0.0));
}

TEST(MigrationFeasible, RespectsNow) {
  EXPECT_TRUE(preemptive_migration_feasible({{1, 2.0, 5.0}}, 1, 3.0));
  EXPECT_FALSE(preemptive_migration_feasible({{1, 2.0, 4.5}}, 1, 3.0));
}

TEST(MigrationFeasible, AggregateCapacity) {
  // Three unit fragments due at 2 on one machine: 3 > 1 * 2 -> infeasible;
  // two machines: 3 <= 2 * 2 and no fragment exceeds its window.
  const std::vector<RemainingJob> fragments{{1, 1.0, 2.0}, {2, 1.0, 2.0},
                                            {3, 1.0, 2.0}};
  EXPECT_FALSE(preemptive_migration_feasible(fragments, 1, 0.0));
  EXPECT_TRUE(preemptive_migration_feasible(fragments, 2, 0.0));
}

TEST(MigrationFeasible, PerJobParallelismMatters) {
  // One fragment of 4 units due at 2: even 8 machines cannot parallelize a
  // single job.
  EXPECT_FALSE(preemptive_migration_feasible({{1, 4.0, 2.0}}, 8, 0.0));
}

TEST(MigrationFeasible, MigrationBeatsNoMigration) {
  // Classic: 3 jobs of length 2, all due at 3, on 2 machines. Total work
  // 6 = 2 * 3 and each job fits its window, so migration succeeds —
  // while any non-preemptive or no-migration schedule fails.
  const std::vector<Job> jobs{make_job(1, 0.0, 2.0, 3.0),
                              make_job(2, 0.0, 2.0, 3.0),
                              make_job(3, 0.0, 2.0, 3.0)};
  EXPECT_TRUE(preemptive_migration_feasible_jobs(jobs, 2));
}

TEST(MigrationFeasible, ReleaseDatesRestrictWindows) {
  // Job 2 releases at 2, due at 3; job 1 needs [0, 3] fully. One machine
  // cannot host both (total 4 > 3).
  const std::vector<Job> jobs{make_job(1, 0.0, 3.0, 3.0),
                              make_job(2, 2.0, 1.0, 3.0)};
  EXPECT_FALSE(preemptive_migration_feasible_jobs(jobs, 1));
  EXPECT_TRUE(preemptive_migration_feasible_jobs(jobs, 2));
}

// ---------- migration admission baseline ----------

TEST(MigrationAdmission, AcceptsEverythingWhenFeasible) {
  const Instance inst({make_job(1, 0.0, 2.0, 3.0), make_job(2, 0.0, 2.0, 3.0),
                       make_job(3, 0.0, 2.0, 3.0)});
  const MigrationResult result = run_migration_admission(inst, 2);
  EXPECT_EQ(result.metrics.accepted, 3u);
  EXPECT_TRUE(result.all_on_time());
  EXPECT_EQ(result.completions.size(), 3u);
}

TEST(MigrationAdmission, RejectsOverload) {
  const Instance inst({make_job(1, 0.0, 2.0, 2.0), make_job(2, 0.0, 2.0, 2.0),
                       make_job(3, 0.0, 2.0, 2.0)});
  const MigrationResult result = run_migration_admission(inst, 2);
  EXPECT_EQ(result.metrics.accepted, 2u);
  EXPECT_EQ(result.metrics.rejected, 1u);
  EXPECT_TRUE(result.all_on_time());
}

TEST(MigrationAdmission, BeatsNonPreemptiveGreedyOnTheClassicInstance) {
  // 3 jobs length 2 due 3 on 2 machines: migration takes all three,
  // non-preemptive admission can take only two.
  const Instance inst({make_job(1, 0.0, 2.0, 3.0), make_job(2, 0.0, 2.0, 3.0),
                       make_job(3, 0.0, 2.0, 3.0)});
  GreedyScheduler greedy(2);
  const double greedy_volume =
      run_online(greedy, inst).metrics.accepted_volume;
  const MigrationResult migration = run_migration_admission(inst, 2);
  EXPECT_DOUBLE_EQ(greedy_volume, 4.0);
  EXPECT_DOUBLE_EQ(migration.metrics.accepted_volume, 6.0);
}

TEST(MigrationAdmission, AccountsEveryJob) {
  WorkloadConfig config;
  config.n = 200;
  config.eps = 0.05;
  config.arrival_rate = 4.0;
  config.seed = 12;
  const Instance inst = generate_workload(config);
  const MigrationResult result = run_migration_admission(inst, 3);
  EXPECT_EQ(result.metrics.accepted + result.metrics.rejected,
            result.metrics.submitted);
  EXPECT_NEAR(
      result.metrics.accepted_volume + result.metrics.rejected_volume,
      inst.total_volume(), 1e-6);
  EXPECT_TRUE(result.all_on_time());
  EXPECT_EQ(result.completions.size(), result.metrics.accepted);
}

TEST(MigrationAdmission, StaysBelowFractionalUpperBound) {
  WorkloadConfig config = scenario("overload", 0.1, 9);
  config.n = 300;
  const Instance inst = generate_workload(config);
  const MigrationResult result = run_migration_admission(inst, 2);
  EXPECT_LE(result.metrics.accepted_volume,
            preemptive_fractional_upper_bound(inst, 2) + 1e-6);
}

TEST(MigrationAdmission, DominatesNoMigrationOnAverage) {
  // Across seeds, migration admission should accept at least roughly as
  // much as the per-machine preemptive EDF (it has strictly more freedom;
  // greedy admission order can cause small per-instance inversions).
  double migration_total = 0.0;
  double edf_total = 0.0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    WorkloadConfig config = scenario("overload", 0.05, seed);
    config.n = 150;
    const Instance inst = generate_workload(config);
    migration_total += run_migration_admission(inst, 2).metrics.accepted_volume;
    edf_total += run_edf_preemptive(inst, 2).metrics.accepted_volume;
  }
  EXPECT_GE(migration_total, 0.95 * edf_total);
}

// ---------- random admission control ----------

TEST(RandomAdmission, ZeroProbabilityRejectsEverything) {
  RandomAdmissionScheduler alg(2, 0.0, 1);
  EXPECT_FALSE(alg.on_arrival(make_job(1, 0.0, 1.0, 5.0)).accepted);
}

TEST(RandomAdmission, UnitProbabilityActsGreedy) {
  RandomAdmissionScheduler alg(1, 1.0, 1);
  EXPECT_TRUE(alg.on_arrival(make_job(1, 0.0, 1.0, 5.0)).accepted);
  EXPECT_TRUE(alg.on_arrival(make_job(2, 0.0, 1.0, 5.0)).accepted);
  EXPECT_FALSE(alg.on_arrival(make_job(3, 0.0, 4.0, 5.0)).accepted);
}

TEST(RandomAdmission, ReplaysIdenticallyAfterReset) {
  WorkloadConfig config;
  config.n = 200;
  config.eps = 0.3;
  config.seed = 3;
  const Instance inst = generate_workload(config);
  RandomAdmissionScheduler alg(2, 0.5, 99);
  const RunResult a = run_online(alg, inst);
  const RunResult b = run_online(alg, inst);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].decision, b.decisions[i].decision);
  }
}

TEST(RandomAdmission, CommitmentsAreLegal) {
  WorkloadConfig config = scenario("overload", 0.1, 21);
  config.n = 400;
  const Instance inst = generate_workload(config);
  RandomAdmissionScheduler alg(3, 0.7, 5);
  const RunResult result = run_online(alg, inst);
  EXPECT_TRUE(result.clean()) << result.commitment_violation;
}

TEST(RandomAdmission, RejectsBadParameters) {
  EXPECT_THROW(RandomAdmissionScheduler(0, 0.5, 1), PreconditionError);
  EXPECT_THROW(RandomAdmissionScheduler(2, 1.5, 1), PreconditionError);
  EXPECT_THROW(RandomAdmissionScheduler(2, -0.1, 1), PreconditionError);
}

}  // namespace
}  // namespace slacksched
