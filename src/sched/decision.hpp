// The immediate-commitment decision type. Upon a job's submission the
// scheduler either rejects it or irrevocably fixes machine and start time
// (the temporal and spatial commitment of the non-preemptive model).
#pragma once

#include <string>

#include "common/time.hpp"

namespace slacksched {

/// An irrevocable admission decision.
struct Decision {
  bool accepted = false;
  int machine = -1;        ///< 0-based machine index when accepted
  TimePoint start = 0.0;   ///< committed start time when accepted

  [[nodiscard]] static Decision reject() { return Decision{}; }

  [[nodiscard]] static Decision accept(int machine, TimePoint start) {
    Decision d;
    d.accepted = true;
    d.machine = machine;
    d.start = start;
    return d;
  }

  [[nodiscard]] std::string to_string() const {
    if (!accepted) return "reject";
    return "accept(machine=" + std::to_string(machine) +
           ", start=" + std::to_string(start) + ")";
  }

  friend bool operator==(const Decision&, const Decision&) = default;
};

}  // namespace slacksched
