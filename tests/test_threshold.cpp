// Tests of Algorithm 1 (ThresholdScheduler): the admission rule (9)/(10),
// the best-fit allocation, Claim 1 (every accepted job completes on time)
// as a property over workload sweeps, determinism, and decision-for-decision
// equivalence of the FrontierSet hot path with the seed implementation.
#include "core/threshold.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "common/expects.hpp"
#include "common/rng.hpp"
#include "core/threshold_reference.hpp"
#include "sched/engine.hpp"
#include "sched/validator.hpp"
#include "workload/generators.hpp"

namespace slacksched {
namespace {

Job make_job(JobId id, TimePoint r, Duration p, TimePoint d) {
  Job j;
  j.id = id;
  j.release = r;
  j.proc = p;
  j.deadline = d;
  return j;
}

TEST(Threshold, AcceptsFirstJobOnEmptySystem) {
  ThresholdScheduler alg(0.5, 2);
  const Decision d = alg.on_arrival(make_job(1, 0.0, 1.0, 1.6));
  EXPECT_TRUE(d.accepted);
  EXPECT_DOUBLE_EQ(d.start, 0.0);
}

TEST(Threshold, ThresholdIsNowOnEmptySystem) {
  ThresholdScheduler alg(0.3, 3);
  EXPECT_DOUBLE_EQ(alg.deadline_threshold(0.0), 0.0);
  EXPECT_DOUBLE_EQ(alg.deadline_threshold(5.5), 5.5);
}

TEST(Threshold, SingleMachineThresholdIsLoadTimesF1) {
  // m = 1, k = 1, f_1 = (1+eps)/eps. After a job of length p the threshold
  // at its release time is p * f_1.
  const double eps = 0.5;
  ThresholdScheduler alg(eps, 1);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 2.0, 100.0)).accepted);
  const double f1 = (1.0 + eps) / eps;
  EXPECT_NEAR(alg.deadline_threshold(0.0), 2.0 * f1, 1e-12);
  // Load drains as time passes.
  EXPECT_NEAR(alg.deadline_threshold(1.0), 1.0 + 1.0 * f1, 1e-12);
  EXPECT_NEAR(alg.deadline_threshold(2.0), 2.0, 1e-12);
}

TEST(Threshold, RejectsBelowThresholdAcceptsAtThreshold) {
  const double eps = 0.5;
  ThresholdScheduler alg(eps, 1);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 2.0, 100.0)).accepted);
  const double d_lim = alg.deadline_threshold(0.0);  // 6.0
  // A job with deadline just below the threshold is rejected...
  EXPECT_FALSE(
      alg.on_arrival(make_job(2, 0.0, 1.0, d_lim - 0.01)).accepted);
  // ...and one at the threshold is accepted.
  EXPECT_TRUE(alg.on_arrival(make_job(3, 0.0, 1.0, d_lim)).accepted);
}

TEST(Threshold, MultiMachineThresholdUsesLeastLoaded) {
  // m = 2, eps = 0.5 -> k = 2: only the least loaded machine (position 2)
  // determines the threshold, so with one busy machine the threshold stays
  // at `now`.
  ThresholdScheduler alg(0.5, 2);
  ASSERT_EQ(alg.solution().k, 2);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 4.0, 100.0)).accepted);
  EXPECT_DOUBLE_EQ(alg.deadline_threshold(0.0), 0.0);
  // A job too tight for the loaded machine lands on the idle one; with
  // both machines busy the position-2 load raises the threshold.
  ASSERT_TRUE(alg.on_arrival(make_job(2, 0.0, 1.0, 4.5)).accepted);
  EXPECT_NEAR(alg.deadline_threshold(0.0), 1.0 * alg.solution().f_at(2),
              1e-12);
}

TEST(Threshold, SmallEpsUsesAllMachines) {
  // m = 2, eps = 0.05 -> k = 1: the most loaded machine also raises the
  // threshold.
  ThresholdScheduler alg(0.05, 2);
  ASSERT_EQ(alg.solution().k, 1);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 4.0, 1000.0)).accepted);
  EXPECT_NEAR(alg.deadline_threshold(0.0), 4.0 * alg.solution().f_at(1),
              1e-9);
}

TEST(Threshold, BestFitPicksMostLoadedFeasibleMachine) {
  ThresholdScheduler alg(0.5, 2);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 4.0, 100.0)).accepted);
  // Best fit stacks loose jobs onto the already loaded machine, keeping
  // the other machines free for tight jobs (the paper's allocation goal).
  const Decision d2 = alg.on_arrival(make_job(2, 0.0, 1.0, 100.0));
  ASSERT_TRUE(d2.accepted);
  EXPECT_EQ(d2.machine, 0);
  EXPECT_DOUBLE_EQ(d2.start, 4.0);
  // A tighter job that cannot wait for load 5 goes to the idle machine 1.
  const Decision d3 = alg.on_arrival(make_job(3, 0.0, 2.0, 4.5));
  ASSERT_TRUE(d3.accepted);
  EXPECT_EQ(d3.machine, 1);
  EXPECT_DOUBLE_EQ(d3.start, 0.0);
  // And the next loose job again prefers the most loaded candidate.
  const Decision d4 = alg.on_arrival(make_job(4, 0.0, 1.0, 100.0));
  ASSERT_TRUE(d4.accepted);
  EXPECT_EQ(d4.machine, 0);
  EXPECT_DOUBLE_EQ(d4.start, 5.0);
}

TEST(Threshold, StartsAfterOutstandingLoad) {
  ThresholdScheduler alg(1.0, 1);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 2.0, 100.0)).accepted);
  const Decision d = alg.on_arrival(make_job(2, 1.0, 1.0, 100.0));
  ASSERT_TRUE(d.accepted);
  EXPECT_DOUBLE_EQ(d.start, 2.0);  // after the first job completes
}

TEST(Threshold, IdleMachineStartsImmediately) {
  ThresholdScheduler alg(1.0, 1);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 1.0, 100.0)).accepted);
  // Arrives long after the first job drained.
  const Decision d = alg.on_arrival(make_job(2, 10.0, 1.0, 100.0));
  ASSERT_TRUE(d.accepted);
  EXPECT_DOUBLE_EQ(d.start, 10.0);
}

TEST(Threshold, ResetClearsState) {
  ThresholdScheduler alg(0.5, 1);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 2.0, 100.0)).accepted);
  alg.reset();
  EXPECT_DOUBLE_EQ(alg.deadline_threshold(0.0), 0.0);
  EXPECT_TRUE(alg.on_arrival(make_job(2, 0.0, 1.0, 1.5)).accepted);
}

TEST(Threshold, KOverrideChangesPhase) {
  ThresholdConfig config;
  config.eps = 0.5;
  config.machines = 3;
  config.k_override = 1;
  ThresholdScheduler alg(config);
  EXPECT_EQ(alg.solution().k, 1);
  EXPECT_NE(alg.name().find("k=1"), std::string::npos);
}

TEST(Threshold, NameMentionsParameters) {
  ThresholdScheduler alg(0.25, 4);
  EXPECT_NE(alg.name().find("Threshold"), std::string::npos);
  EXPECT_NE(alg.name().find("m=4"), std::string::npos);
}

TEST(Threshold, RejectsInvalidConstruction) {
  EXPECT_THROW(ThresholdScheduler(0.0, 2), PreconditionError);
  EXPECT_THROW(ThresholdScheduler(1.5, 2), PreconditionError);
  EXPECT_THROW(ThresholdScheduler(0.5, 0), PreconditionError);
}

TEST(Threshold, SlackContractViolationIsLoudNotSilent) {
  // Algorithm 1's correctness argument needs every job to satisfy the
  // slack condition for the configured eps. A tighter job either gets
  // rejected by the threshold, or — if the threshold would admit it but
  // no machine can host it — trips the allocation postcondition rather
  // than producing an illegal commitment.
  ThresholdScheduler alg(0.5, 1);
  ASSERT_TRUE(alg.on_arrival(make_job(1, 0.0, 1.0, 100.0)).accepted);
  // Slack 0.1 < 0.5: deadline 2.2, threshold is 1 * f_1 = 3 -> rejected.
  EXPECT_FALSE(alg.on_arrival(make_job(2, 0.0, 2.0, 2.2)).accepted);

  // A long zero-ish-slack job above the threshold but infeasible on the
  // loaded machine: f_1 = 3 with load 2 gives d_lim = 6; deadline 6.05
  // admits, but load 2 + proc 6 = 8 > 6.05 misses. The contract violation
  // surfaces as a PostconditionError.
  ThresholdScheduler tight(0.5, 1);
  ASSERT_TRUE(tight.on_arrival(make_job(3, 0.0, 2.0, 100.0)).accepted);
  EXPECT_THROW((void)tight.on_arrival(make_job(4, 0.0, 6.0, 6.05)),
               PostconditionError);
}

TEST(Threshold, LooserJobsThanEpsAreFine) {
  // The converse direction is explicitly supported: jobs may have MORE
  // slack than the configured eps.
  ThresholdScheduler alg(0.1, 2);
  for (int i = 0; i < 20; ++i) {
    const Decision d =
        alg.on_arrival(make_job(i + 1, 0.0, 1.0, 1000.0));  // huge slack
    EXPECT_TRUE(d.accepted);
  }
}

TEST(Threshold, GoldwasserKerbikovFactoryIsSingleMachine) {
  ThresholdScheduler gk = make_goldwasser_kerbikov(0.2);
  EXPECT_EQ(gk.machines(), 1);
  EXPECT_NEAR(gk.solution().c, 2.0 + 1.0 / 0.2, 1e-9);
}

TEST(Threshold, DeterministicAcrossRuns) {
  const Instance inst = generate_workload([] {
    WorkloadConfig c;
    c.n = 300;
    c.eps = 0.2;
    c.seed = 99;
    return c;
  }());
  ThresholdScheduler alg(0.2, 3);
  const RunResult a = run_online(alg, inst);
  const RunResult b = run_online(alg, inst);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    EXPECT_EQ(a.decisions[i].decision, b.decisions[i].decision);
  }
}

/// Claim 1 as a property: over arrival/size/slack sweeps, every accepted
/// job is committed to a legal slot and the whole schedule validates.
class ThresholdClaim1Sweep
    : public ::testing::TestWithParam<
          std::tuple<double, int, ArrivalModel, SizeModel, SlackModel>> {};

TEST_P(ThresholdClaim1Sweep, AcceptedJobsAlwaysCompleteOnTime) {
  const auto [eps, m, arrival, size, slack] = GetParam();
  WorkloadConfig config;
  config.n = 400;
  config.eps = eps;
  config.arrival = arrival;
  config.size = size;
  config.slack = slack;
  config.arrival_rate = 2.0;
  config.seed = 12345;
  const Instance inst = generate_workload(config);

  ThresholdScheduler alg(eps, m);
  const RunResult result = run_online(alg, inst);
  EXPECT_TRUE(result.clean()) << result.commitment_violation;
  const auto report = validate_schedule(inst, result.schedule);
  EXPECT_TRUE(report.ok) << report.to_string();
  EXPECT_GT(result.metrics.accepted, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdClaim1Sweep,
    ::testing::Combine(
        ::testing::Values(0.05, 0.3, 1.0), ::testing::Values(1, 2, 4),
        ::testing::Values(ArrivalModel::kPoisson, ArrivalModel::kBursty),
        ::testing::Values(SizeModel::kBoundedPareto, SizeModel::kBimodal),
        ::testing::Values(SlackModel::kTight, SlackModel::kMixed)));

/// Seeds sweep: the acceptance threshold never admits an infeasible job
/// even under adversarially tight slack.
class ThresholdSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThresholdSeedSweep, TightSlackStressStaysLegal) {
  WorkloadConfig config = scenario("overload", 0.02, GetParam());
  config.n = 600;
  const Instance inst = generate_workload(config);
  ThresholdScheduler alg(0.02, 2);
  const RunResult result = run_online(alg, inst);
  EXPECT_TRUE(result.clean()) << result.commitment_violation;
  EXPECT_TRUE(validate_schedule(inst, result.schedule).ok);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdSeedSweep,
                         ::testing::Values(1, 7, 21, 1001, 424242));

// ---------------------------------------------------------------------------
// Randomized equivalence with the seed implementation.
//
// ThresholdScheduler's FrontierSet hot path must be byte-identical — same
// accept/reject bit, same machine, same start time, bit-for-bit — to
// ReferenceThresholdScheduler (the retained seed code) on every stream.
// ---------------------------------------------------------------------------

enum class StreamKind { kAdversarial, kBurst, kPoisson };

/// Hand-built worst case for incremental order maintenance: batches of
/// *identical* jobs released at the same instant (maximal frontier ties),
/// interleaved with idle gaps long enough to drain every machine (zero-load
/// min-index path) and occasional tight-deadline singles (reject path).
/// Every job satisfies the slack condition for `eps`.
Instance adversarial_tie_stream(double eps, int machines, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Job> jobs;
  TimePoint now = 0.0;
  JobId next_id = 1;
  for (int round = 0; round < 60; ++round) {
    // A batch of clones, more than machines so several stack per machine.
    const int batch = machines + static_cast<int>(rng.uniform_int(1, 4));
    const Duration proc = rng.uniform(0.0, 1.0) < 0.5 ? 1.0  // exact ties
                                                      : rng.uniform(0.5, 2.0);
    const double slack = eps + rng.uniform(0.0, 2.0);
    for (int i = 0; i < batch; ++i) {
      jobs.push_back(make_job(next_id++, now, proc, now + (1.0 + slack) * proc));
    }
    // A tight single at the same release to exercise the reject branch.
    jobs.push_back(
        make_job(next_id++, now, 3.0 * proc, now + (1.0 + eps) * 3.0 * proc));
    switch (round % 3) {
      case 0: now += rng.uniform(0.1, 1.0); break;         // dense arrivals
      case 1: now += proc * batch + 10.0; break;           // full drain: idle
      default: now += proc * 0.5; break;                   // partial drain
    }
  }
  return Instance(std::move(jobs));
}

Instance equivalence_stream(StreamKind kind, double eps, int machines,
                            std::uint64_t seed) {
  if (kind == StreamKind::kAdversarial) {
    return adversarial_tie_stream(eps, machines, seed);
  }
  WorkloadConfig config;
  config.n = 800;
  config.eps = eps;
  config.seed = seed;
  config.arrival_rate = std::max(1.0, 1.5 * machines);
  if (kind == StreamKind::kBurst) {
    config.arrival = ArrivalModel::kBursty;
    config.size = SizeModel::kConstant;  // exact frontier ties
    config.slack = SlackModel::kTight;
  } else {
    config.arrival = ArrivalModel::kPoisson;
    config.size = SizeModel::kBoundedPareto;
    config.slack = SlackModel::kMixed;
  }
  return generate_workload(config);
}

class ThresholdEquivalence
    : public ::testing::TestWithParam<std::tuple<double, int, StreamKind>> {};

TEST_P(ThresholdEquivalence, MatchesSeedDecisionForDecision) {
  const auto [eps, m, kind] = GetParam();
  const Instance inst =
      equivalence_stream(kind, eps, m, 0xE9u + static_cast<std::uint64_t>(m));

  ThresholdScheduler fast(eps, m);
  ReferenceThresholdScheduler slow(eps, m);
  fast.reset();
  slow.reset();
  for (const Job& job : inst.jobs()) {
    // The admission threshold itself must agree bit-for-bit...
    ASSERT_EQ(fast.deadline_threshold(job.release),
              slow.deadline_threshold(job.release))
        << "threshold diverged at job " << job.id;
    // ...and so must the full decision (accept bit, machine, start).
    const Decision expected = slow.on_arrival(job);
    const Decision actual = fast.on_arrival(job);
    ASSERT_EQ(actual, expected)
        << "decision diverged at job " << job.id << " (release " << job.release
        << ", proc " << job.proc << ", deadline " << job.deadline << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ThresholdEquivalence,
    ::testing::Combine(::testing::Values(0.1, 0.5, 1.0),
                       ::testing::Values(1, 2, 7, 64),
                       ::testing::Values(StreamKind::kAdversarial,
                                         StreamKind::kBurst,
                                         StreamKind::kPoisson)));

TEST(ThresholdEquivalence, RunOnlineStreamsAreIdentical) {
  // End-to-end through the engine: identical decision records and identical
  // committed schedules on a large mixed workload.
  const Instance inst = generate_workload([] {
    WorkloadConfig c;
    c.n = 2000;
    c.eps = 0.2;
    c.arrival = ArrivalModel::kBursty;
    c.size = SizeModel::kBimodal;
    c.arrival_rate = 6.0;
    c.seed = 4242;
    return c;
  }());
  ThresholdScheduler fast(0.2, 8);
  ReferenceThresholdScheduler slow(0.2, 8);
  const RunResult a = run_online(fast, inst);
  const RunResult b = run_online(slow, inst);
  ASSERT_EQ(a.decisions.size(), b.decisions.size());
  for (std::size_t i = 0; i < a.decisions.size(); ++i) {
    ASSERT_EQ(a.decisions[i].decision, b.decisions[i].decision) << "job " << i;
  }
  EXPECT_EQ(a.metrics.accepted, b.metrics.accepted);
  EXPECT_DOUBLE_EQ(a.schedule.total_volume(), b.schedule.total_volume());
  EXPECT_DOUBLE_EQ(a.schedule.makespan(), b.schedule.makespan());
}

}  // namespace
}  // namespace slacksched
