#include "service/recovery.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "policy/criticality.hpp"
#include "sched/decision.hpp"
#include "sched/validator.hpp"
#include "service/commit_log.hpp"

namespace slacksched {

namespace {

template <typename T>
T get_raw(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

RecoveryResult fail(RecoveryResult result, std::string error) {
  result.ok = false;
  result.error = std::move(error);
  return result;
}

/// Length fields a writer could never have produced mark a torn frame, not
/// a record to skip: today every payload is exactly kWalPayloadBytes, and
/// the cap guards against interpreting garbage as a multi-gigabyte record.
bool plausible_payload_len(std::uint32_t len) {
  return len == kWalPayloadBytes && len <= 4096;
}

}  // namespace

RecoveryResult recover_commit_log(const std::string& path, int machines,
                                  OnlineScheduler* scheduler,
                                  bool truncate_file,
                                  const SpeedProfile* speeds) {
  const SpeedProfile* profile =
      speeds != nullptr
          ? speeds
          : (scheduler != nullptr ? scheduler->speed_profile() : nullptr);
  RecoveryResult result{.schedule = profile != nullptr
                                        ? Schedule(machines, profile->speeds())
                                        : Schedule(machines),
                        .metrics = {},
                        .records_replayed = 0,
                        .bytes_truncated = 0,
                        .tail_truncated = false,
                        .ok = true,
                        .error = {}};
  if (machines < 1) {
    return fail(std::move(result), "recovery requires machines >= 1");
  }

  const int fd = ::open(path.c_str(), truncate_file ? O_RDWR : O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) return result;  // no log yet: fresh state
    return fail(std::move(result), "cannot open commit log " + path + ": " +
                                       std::strerror(errno));
  }

  const off_t raw_size = ::lseek(fd, 0, SEEK_END);
  if (raw_size < 0) {
    ::close(fd);
    return fail(std::move(result), "cannot seek commit log " + path + ": " +
                                       std::strerror(errno));
  }
  const std::size_t size = static_cast<std::size_t>(raw_size);

  if (size < kWalHeaderBytes) {
    // Torn inside the header: nothing was ever durably committed.
    if (size > 0) {
      result.tail_truncated = true;
      result.bytes_truncated = size;
      if (truncate_file && ::ftruncate(fd, 0) != 0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        return fail(std::move(result),
                    "cannot truncate commit log " + path + ": " + err);
      }
    }
    ::close(fd);
    return result;
  }

  std::vector<char> data(size);
  std::size_t off = 0;
  while (off < size) {
    const ssize_t n =
        ::pread(fd, data.data() + off, size - off, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return fail(std::move(result),
                  "cannot read commit log " + path + ": " + err);
    }
    if (n == 0) break;  // concurrent shrink; treat the rest as torn
    off += static_cast<std::size_t>(n);
  }
  const std::size_t have = off;

  if (std::memcmp(data.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    ::close(fd);
    return fail(std::move(result), path + ": not a commit log (bad magic)");
  }
  const auto version = get_raw<std::uint32_t>(data.data() + 8);
  const auto header_machines = get_raw<std::uint32_t>(data.data() + 12);
  if (version != kWalVersion) {
    ::close(fd);
    return fail(std::move(result), path + ": unsupported commit log version " +
                                       std::to_string(version));
  }
  if (header_machines != static_cast<std::uint32_t>(machines)) {
    ::close(fd);
    return fail(std::move(result),
                path + ": commit log is for " +
                    std::to_string(header_machines) + " machines, expected " +
                    std::to_string(machines));
  }

  std::size_t offset = kWalHeaderBytes;
  std::size_t good_offset = offset;
  while (offset + kWalFrameBytes <= have) {
    const auto payload_len = get_raw<std::uint32_t>(data.data() + offset);
    const auto stored_crc =
        get_raw<std::uint32_t>(data.data() + offset + sizeof(std::uint32_t));
    if (!plausible_payload_len(payload_len)) break;
    if (offset + kWalFrameBytes + payload_len > have) break;
    const char* payload = data.data() + offset + kWalFrameBytes;
    if (wal_crc32(payload, payload_len) != stored_crc) break;

    Job job;
    job.id = static_cast<JobId>(get_raw<std::int64_t>(payload));
    job.release = get_raw<double>(payload + 8);
    job.proc = get_raw<double>(payload + 16);
    job.deadline = get_raw<double>(payload + 24);
    const int machine = static_cast<int>(get_raw<std::int32_t>(payload + 32));
    const auto criticality = get_raw<std::uint32_t>(payload + 36);
    const TimePoint start = get_raw<double>(payload + 40);
    if (criticality >= kCriticalityCount) {
      // A class outside the enum passed the CRC: the record is corrupt in
      // a way framing cannot see, like an illegal commitment.
      ::close(fd);
      return fail(std::move(result),
                  path + ": record " +
                      std::to_string(result.records_replayed + 1) +
                      " carries criticality " + std::to_string(criticality) +
                      ", outside the frozen class range");
    }
    job.criticality = static_cast<Criticality>(criticality);

    if (wal_is_control_id(job.id)) {
      // Capacity control record: replay the resize at exactly this point
      // of the log, so every subsequent commitment sees the machine pool
      // the original run committed against. Control records count toward
      // records_replayed (the replication sequence space) but are not
      // jobs, so the run metrics ignore them.
      if (job.id == kWalControlGrow) {
        if (!result.schedule.uniform_speeds()) {
          ::close(fd);
          return fail(std::move(result),
                      path + ": grow control record under a machine-speed "
                             "profile; elastic capacity requires identical "
                             "machines");
        }
        if (scheduler != nullptr) {
          const int grown = scheduler->add_machine();
          if (grown != machine) {
            ::close(fd);
            return fail(std::move(result),
                        path + ": grow control record names machine " +
                            std::to_string(machine) +
                            " but the scheduler grew machine " +
                            std::to_string(grown) +
                            "; the replayed resize sequence diverged");
          }
        }
        result.schedule.ensure_machines(machine + 1);
      } else if (job.id == kWalControlRetireBegin) {
        if (scheduler != nullptr && !scheduler->begin_retire(machine)) {
          ::close(fd);
          return fail(std::move(result),
                      path + ": retire-begin control record for machine " +
                          std::to_string(machine) +
                          " is not applicable to scheduler '" +
                          scheduler->name() + "'");
        }
      } else if (job.id == kWalControlRetireDone) {
        // The original run observed the drain before logging this, so the
        // retirement finishes unconditionally on replay.
        if (scheduler != nullptr && !scheduler->finish_retire(machine)) {
          ::close(fd);
          return fail(std::move(result),
                      path + ": retire-done control record for machine " +
                          std::to_string(machine) +
                          " but that machine is not retiring");
        }
      } else {
        ::close(fd);
        return fail(std::move(result),
                    path + ": unknown control record id " +
                        std::to_string(job.id));
      }
      ++result.records_replayed;
      offset += kWalFrameBytes + payload_len;
      good_offset = offset;
      continue;
    }

    const Decision decision = Decision::accept(machine, start);
    const std::string violation =
        validate_commitment(result.schedule, job, decision);
    if (!violation.empty()) {
      ::close(fd);
      return fail(std::move(result),
                  path + ": record " +
                      std::to_string(result.records_replayed + 1) +
                      " (job " + std::to_string(job.id) +
                      ") fails commitment validation: " + violation);
    }
    result.schedule.commit(job, machine, start);
    if (scheduler != nullptr &&
        !scheduler->restore_commitment(job, machine, start)) {
      ::close(fd);
      return fail(std::move(result),
                  path + ": scheduler '" + scheduler->name() +
                      "' cannot restore commitments; recovery for it is "
                      "unsupported");
    }
    ++result.records_replayed;
    ++result.metrics.submitted;
    ++result.metrics.accepted;
    result.metrics.accepted_volume += job.proc;

    offset += kWalFrameBytes + payload_len;
    good_offset = offset;
  }

  if (good_offset < have) {
    result.tail_truncated = true;
    result.bytes_truncated = have - good_offset;
    if (truncate_file &&
        ::ftruncate(fd, static_cast<off_t>(good_offset)) != 0) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return fail(std::move(result),
                  "cannot truncate commit log " + path + ": " + err);
    }
  }
  ::close(fd);
  result.metrics.makespan = result.schedule.makespan();
  return result;
}

}  // namespace slacksched
