// Shard supervision: the health FSM, in-place restart of crashed workers,
// the circuit breaker, administrative force_down/force_recover, and the
// gateway's failover routing around unavailable shards.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/greedy.hpp"
#include "service/fault_injection.hpp"
#include "service/gateway.hpp"

namespace slacksched {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::string wal_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "slacksched_sup_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

SupervisorConfig fast_supervisor() {
  SupervisorConfig config;
  config.poll_interval = milliseconds(2);
  config.stall_threshold = milliseconds(200);
  config.down_threshold = milliseconds(500);
  config.max_restarts = 10;
  config.backoff_initial = milliseconds(2);
  config.backoff_max = milliseconds(10);
  config.retry_after = milliseconds(5);
  return config;
}

/// Polls `pred` until it holds or `limit` elapses.
template <typename Pred>
bool eventually(Pred pred, milliseconds limit = milliseconds(5000)) {
  const auto give_up = steady_clock::now() + limit;
  while (steady_clock::now() < give_up) {
    if (pred()) return true;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return pred();
}

Job make_job(JobId id, double release, double proc, double deadline) {
  Job job;
  job.id = id;
  job.release = release;
  job.proc = proc;
  job.deadline = deadline;
  return job;
}

/// `count` jobs every greedy configuration in this file accepts: unit
/// processing times, generous deadlines, releases ascending from `from`.
std::vector<Job> easy_jobs(int count, JobId first_id, double from) {
  std::vector<Job> jobs;
  jobs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const double r = from + 0.01 * i;
    jobs.push_back(make_job(first_id + i, r, 1.0, r + 100.0));
  }
  return jobs;
}

void submit_now(AdmissionGateway& gateway, const std::vector<Job>& jobs) {
  for (const Job& job : jobs) {
    ASSERT_EQ(gateway.submit(job), Outcome::kEnqueued)
        << "job " << job.id;
  }
}

TEST(ShardHealthNames, EveryStateHasAName) {
  EXPECT_EQ(to_string(ShardHealth::kHealthy), "healthy");
  EXPECT_EQ(to_string(ShardHealth::kDegraded), "degraded");
  EXPECT_EQ(to_string(ShardHealth::kDown), "down");
  EXPECT_EQ(to_string(ShardHealth::kRecovering), "recovering");
}

TEST(Supervisor, DisabledMonitorLeavesShardsHealthy) {
  GatewayConfig config;
  config.shards = 2;
  config.supervisor.enabled = false;
  AdmissionGateway gateway(
      config, [](int) { return std::make_unique<GreedyScheduler>(2); });
  EXPECT_EQ(gateway.shard_health(0), ShardHealth::kHealthy);
  EXPECT_EQ(gateway.shard_health(1), ShardHealth::kHealthy);
  submit_now(gateway, easy_jobs(10, 0, 0.0));
  const GatewayResult result = gateway.finish();
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.merged.accepted, 10u);
}

TEST(Supervisor, CrashedWorkerIsRestartedInPlaceFromItsLog) {
  FaultPlan plan;
  plan.add({FaultSite::kWorkerPanic, 0, 1});  // crash at 1st batch boundary
  FaultInjector injector(plan);

  GatewayConfig config;
  config.shards = 1;
  config.wal_dir = wal_dir("restart");
  config.wal_fsync = FsyncPolicy::kEveryCommit;
  config.supervisor = fast_supervisor();
  config.pop_timeout = milliseconds(5);
  config.fault_injector = &injector;
  AdmissionGateway gateway(
      config, [](int) { return std::make_unique<GreedyScheduler>(4); });

  submit_now(gateway, easy_jobs(10, 0, 0.0));
  ASSERT_TRUE(eventually([&] {
    return gateway.supervisor().restarts(0) >= 1 &&
           gateway.shard_health(0) == ShardHealth::kHealthy;
  })) << "crashed worker was not restarted";
  EXPECT_EQ(injector.fired(), 1u);

  submit_now(gateway, easy_jobs(10, 100, 10.0));
  const GatewayResult result = gateway.finish();
  EXPECT_TRUE(result.clean()) << result.first_violation();
  EXPECT_TRUE(result.errors.empty());
  // Every accepted job survived the crash: the pre-crash commitments came
  // back from the log, the post-restart ones were decided live.
  EXPECT_EQ(result.merged.accepted, 20u);
  EXPECT_EQ(result.shards[0].schedule.job_count(), 20u);
  EXPECT_GE(result.metrics.total.recoveries, 1u);
  EXPECT_GE(result.metrics.total.wal_records_replayed, 1u);
  std::filesystem::remove_all(config.wal_dir);
}

TEST(Supervisor, HeartbeatStallDegradesThenHealthyOnResume) {
  /// Wedges the worker inside one on_arrival call long enough to trip the
  /// stall threshold, then behaves normally.
  class WedgeScheduler final : public OnlineScheduler {
   public:
    explicit WedgeScheduler(milliseconds wedge) : wedge_(wedge), inner_(2) {}
    Decision on_arrival(const Job& job) override {
      if (!wedged_) {
        wedged_ = true;
        std::this_thread::sleep_for(wedge_);
      }
      return inner_.on_arrival(job);
    }
    [[nodiscard]] int machines() const override { return inner_.machines(); }
    void reset() override { inner_.reset(); }
    [[nodiscard]] std::string name() const override { return "Wedge"; }

   private:
    milliseconds wedge_;
    bool wedged_ = false;
    GreedyScheduler inner_;
  };

  GatewayConfig config;
  config.shards = 1;
  config.supervisor = fast_supervisor();
  config.supervisor.stall_threshold = milliseconds(40);
  config.supervisor.down_threshold = milliseconds(10000);
  config.pop_timeout = milliseconds(5);
  AdmissionGateway gateway(config, [](int) {
    return std::make_unique<WedgeScheduler>(milliseconds(250));
  });

  submit_now(gateway, easy_jobs(1, 0, 0.0));
  EXPECT_TRUE(eventually(
      [&] { return gateway.shard_health(0) == ShardHealth::kDegraded; }))
      << "stalled worker never marked degraded";
  EXPECT_TRUE(eventually(
      [&] { return gateway.shard_health(0) == ShardHealth::kHealthy; }))
      << "resumed worker never marked healthy again";
  const GatewayResult result = gateway.finish();
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.merged.accepted, 1u);
}

TEST(Supervisor, CircuitBreaksWhenRestartsAreExhausted) {
  // No WAL configured: a crashed shard cannot be restarted, every attempt
  // fails, and after max_restarts the circuit breaks for good.
  FaultPlan plan;
  plan.add({FaultSite::kDequeue, 0, 1});
  FaultInjector injector(plan);

  GatewayConfig config;
  config.shards = 1;
  config.supervisor = fast_supervisor();
  config.supervisor.max_restarts = 2;
  config.pop_timeout = milliseconds(5);
  config.fault_injector = &injector;
  AdmissionGateway gateway(
      config, [](int) { return std::make_unique<GreedyScheduler>(2); });

  submit_now(gateway, easy_jobs(4, 0, 0.0));
  ASSERT_TRUE(eventually([&] { return gateway.supervisor().circuit_broken(0); }))
      << "circuit never broke";
  EXPECT_EQ(gateway.shard_health(0), ShardHealth::kDown);
  EXPECT_EQ(gateway.supervisor().restarts(0), 0);

  // The single shard is gone: new work is shed with retry_after.
  const Outcome status = gateway.submit(make_job(99, 1.0, 1.0, 100.0));
  EXPECT_EQ(status, Outcome::kRejectedRetryAfter);
  EXPECT_EQ(gateway.retry_after(), milliseconds(5));
  EXPECT_GE(gateway.metrics_snapshot().total.degraded_rejected, 1u);

  const GatewayResult result = gateway.finish();
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_NE(result.errors[0].find("shard 0"), std::string::npos)
      << result.errors[0];
}

TEST(Supervisor, ForceDownDrainsAndForceRecoverRestarts) {
  GatewayConfig config;
  config.shards = 1;
  config.wal_dir = wal_dir("force");
  config.supervisor = fast_supervisor();
  config.pop_timeout = milliseconds(5);
  AdmissionGateway gateway(
      config, [](int) { return std::make_unique<GreedyScheduler>(2); });

  submit_now(gateway, easy_jobs(5, 0, 0.0));
  ASSERT_TRUE(eventually(
      [&] { return gateway.metrics_snapshot().total.submitted >= 5; }));

  gateway.supervisor().force_down(0);
  EXPECT_EQ(gateway.shard_health(0), ShardHealth::kDown);
  // The monitor must not undo an administrative drain.
  std::this_thread::sleep_for(milliseconds(30));
  EXPECT_EQ(gateway.shard_health(0), ShardHealth::kDown);
  EXPECT_EQ(gateway.supervisor().restarts(0), 0);

  // force_recover refuses until the worker drained and exited, then
  // replays the log and brings the shard back.
  ASSERT_TRUE(eventually([&] { return gateway.supervisor().force_recover(0); }))
      << "force_recover never succeeded";
  EXPECT_EQ(gateway.shard_health(0), ShardHealth::kHealthy);
  EXPECT_EQ(gateway.supervisor().restarts(0), 1);

  submit_now(gateway, easy_jobs(5, 100, 10.0));
  const GatewayResult result = gateway.finish();
  EXPECT_TRUE(result.clean());
  EXPECT_TRUE(result.errors.empty());
  EXPECT_EQ(result.merged.accepted, 10u);
  EXPECT_EQ(result.shards[0].schedule.job_count(), 10u);
  EXPECT_GE(result.metrics.total.recoveries, 1u);
  std::filesystem::remove_all(config.wal_dir);
}

TEST(Supervisor, FailoverSpillsNewJobsToTheHealthyShard) {
  GatewayConfig config;
  config.shards = 2;
  config.routing = RoutingPolicy::kRoundRobin;
  config.supervisor.enabled = false;  // manual control only
  AdmissionGateway gateway(
      config, [](int) { return std::make_unique<GreedyScheduler>(2); });

  gateway.supervisor().force_down(0);
  EXPECT_FALSE(gateway.supervisor().available(0));
  EXPECT_TRUE(gateway.supervisor().any_available());

  // Round-robin homes half the jobs on shard 0; every one of those must
  // spill to shard 1, and existing commitments must not move.
  submit_now(gateway, easy_jobs(20, 0, 0.0));
  const GatewayResult result = gateway.finish();
  EXPECT_TRUE(result.clean());
  EXPECT_EQ(result.shards[0].schedule.job_count(), 0u);
  EXPECT_EQ(result.shards[1].schedule.job_count(), 20u);
  EXPECT_EQ(result.metrics.total.failovers, 10u);
  EXPECT_EQ(result.metrics.shards[0].failovers, 10u);  // charged to the home
}

TEST(Supervisor, AllShardsDownShedsWithRetryAfter) {
  GatewayConfig config;
  config.shards = 1;
  config.supervisor.enabled = false;
  config.supervisor.retry_after = milliseconds(7);
  AdmissionGateway gateway(
      config, [](int) { return std::make_unique<GreedyScheduler>(2); });

  gateway.supervisor().force_down(0);
  EXPECT_FALSE(gateway.supervisor().any_available());
  EXPECT_EQ(gateway.submit(make_job(1, 0.0, 1.0, 10.0)),
            Outcome::kRejectedRetryAfter);
  EXPECT_EQ(gateway.retry_after(), milliseconds(7));

  std::vector<Outcome> statuses;
  const std::vector<Job> jobs = easy_jobs(3, 10, 1.0);
  const BatchSubmitResult batch = gateway.submit_batch(
      std::span<const Job>(jobs.data(), jobs.size()), &statuses);
  EXPECT_EQ(batch.rejected_retry_after, 3u);
  EXPECT_EQ(batch.enqueued, 0u);
  for (const Outcome s : statuses) {
    EXPECT_EQ(s, Outcome::kRejectedRetryAfter);
  }
  EXPECT_GE(gateway.metrics_snapshot().total.degraded_rejected, 4u);
  (void)gateway.finish();
}

TEST(Supervisor, WithoutFailoverADownShardRejectsAsClosed) {
  GatewayConfig config;
  config.shards = 1;
  config.supervisor.enabled = false;
  config.enable_failover = false;
  AdmissionGateway gateway(
      config, [](int) { return std::make_unique<GreedyScheduler>(2); });

  gateway.supervisor().force_down(0);
  // The drained queue refuses as closed — not as backpressure, and not as
  // retry_after (failover is off; the job is offered to its home shard).
  EXPECT_EQ(gateway.submit(make_job(1, 0.0, 1.0, 10.0)),
            Outcome::kRejectedClosed);
  (void)gateway.finish();
}

}  // namespace
}  // namespace slacksched
