// Tests for the lock-free decision trace ring: FIFO drain, wraparound,
// the drop-on-full counter, globally shared sequence numbers, CSV round
// trips, and a multi-writer/concurrent-drain race (run under TSan in CI).
#include "service/trace_ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

namespace slacksched {
namespace {

TraceEvent decision_event(JobId id, int shard, bool accepted) {
  TraceEvent e;
  e.job_id = id;
  e.home_shard = static_cast<std::int16_t>(shard);
  e.shard = static_cast<std::int16_t>(shard);
  e.kind = accepted ? Outcome::kAccepted : Outcome::kRejected;
  e.latency_bin = 3;
  e.fsync_class = static_cast<std::uint8_t>(FsyncPolicy::kBatch);
  return e;
}

TEST(TraceRing, DrainsInFifoOrderWithAssignedSeqs) {
  TraceRing ring(8);
  for (JobId id = 0; id < 5; ++id) {
    EXPECT_TRUE(ring.record(decision_event(id, 0, true)));
  }
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.drain(out), 5u);
  ASSERT_EQ(out.size(), 5u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].job_id, static_cast<JobId>(i));
    EXPECT_EQ(out[i].seq, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, CapacityRoundsUpToAPowerOfTwo) {
  TraceRing ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  TraceRing tiny(0);
  EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(TraceRing, FullRingDropsAndCounts) {
  TraceRing ring(4);  // capacity exactly 4
  for (JobId id = 0; id < 4; ++id) {
    EXPECT_TRUE(ring.record(decision_event(id, 0, true)));
  }
  EXPECT_FALSE(ring.record(decision_event(100, 0, true)));
  EXPECT_FALSE(ring.record(decision_event(101, 0, true)));
  EXPECT_EQ(ring.dropped(), 2u);

  // The first four events survived untouched; the drops never overwrote.
  std::vector<TraceEvent> out;
  EXPECT_EQ(ring.drain(out), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].job_id, static_cast<JobId>(i));
  }

  // Dropped events do not consume sequence numbers: the next recorded
  // event continues the dense seq stream.
  EXPECT_TRUE(ring.record(decision_event(200, 0, false)));
  out.clear();
  EXPECT_EQ(ring.drain(out), 1u);
  EXPECT_EQ(out[0].seq, 4u);
  EXPECT_EQ(out[0].job_id, 200);
}

TEST(TraceRing, WrapsAroundManyGenerations) {
  TraceRing ring(4);
  std::vector<TraceEvent> out;
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(ring.record(decision_event(2 * round, 1, true)));
    ASSERT_TRUE(ring.record(decision_event(2 * round + 1, 1, false)));
    out.clear();
    ASSERT_EQ(ring.drain(out), 2u);
    EXPECT_EQ(out[0].job_id, 2 * round);
    EXPECT_EQ(out[1].job_id, 2 * round + 1);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRing, SharedSeqMergesRingsIntoOneTotalOrder) {
  std::atomic<std::uint64_t> shared{0};
  TraceRing a(8, &shared);
  TraceRing b(8, &shared);
  ASSERT_TRUE(a.record(decision_event(10, 0, true)));
  ASSERT_TRUE(b.record(decision_event(20, 1, true)));
  ASSERT_TRUE(a.record(decision_event(11, 0, false)));
  std::vector<TraceEvent> merged;
  a.drain(merged);
  b.drain(merged);
  std::sort(merged.begin(), merged.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              return x.seq < y.seq;
            });
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].job_id, 10);
  EXPECT_EQ(merged[1].job_id, 20);
  EXPECT_EQ(merged[2].job_id, 11);
  EXPECT_EQ(shared.load(), 3u);
}

TEST(TraceRing, ConcurrentWritersAccountForEveryEvent) {
  // Several producers race into a deliberately small ring while one
  // consumer drains concurrently: every produced event is either drained
  // exactly once or counted as dropped, per-writer order is preserved,
  // and no seq is duplicated. This suite runs under TSan in CI.
  constexpr int kWriters = 4;
  constexpr JobId kPerWriter = 10000;
  TraceRing ring(256);

  std::atomic<bool> done{false};
  std::vector<TraceEvent> drained;
  std::thread consumer([&] {
    std::vector<TraceEvent> batch;
    while (!done.load(std::memory_order_acquire)) {
      batch.clear();
      ring.drain(batch);
      drained.insert(drained.end(), batch.begin(), batch.end());
      std::this_thread::yield();
    }
    batch.clear();
    ring.drain(batch);  // final sweep after all writers stopped
    drained.insert(drained.end(), batch.begin(), batch.end());
  });

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&ring, w] {
      for (JobId i = 0; i < kPerWriter; ++i) {
        ring.record(decision_event(w * kPerWriter + i, w, i % 2 == 0));
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  consumer.join();

  EXPECT_EQ(drained.size() + ring.dropped(),
            static_cast<std::size_t>(kWriters) * kPerWriter);
  EXPECT_GT(drained.size(), 0u);

  std::set<std::uint64_t> seqs;
  std::vector<JobId> last_per_writer(kWriters, -1);
  for (const TraceEvent& e : drained) {
    EXPECT_TRUE(seqs.insert(e.seq).second) << "duplicate seq " << e.seq;
    const auto w = static_cast<std::size_t>(e.job_id / kPerWriter);
    ASSERT_LT(w, static_cast<std::size_t>(kWriters));
    // A single writer's surviving events drain in the order it wrote them.
    EXPECT_GT(e.job_id, last_per_writer[w]);
    last_per_writer[w] = e.job_id;
  }
}

TEST(TraceCsv, RoundTripsEveryFieldIncludingSentinels) {
  std::vector<TraceEvent> events;
  TraceEvent d = decision_event(42, 3, true);
  d.seq = 7;
  d.home_shard = 1;  // failed over: home != actual
  events.push_back(d);
  TraceEvent f;
  f.seq = 8;
  f.job_id = 43;
  f.home_shard = 1;
  f.shard = 3;
  f.kind = Outcome::kFailover;  // routing event: no latency, no WAL
  events.push_back(f);
  TraceEvent s;
  s.seq = 9;
  s.job_id = 44;
  s.home_shard = 2;
  s.shard = -1;  // shed: never reached a shard
  s.kind = Outcome::kRejectedRetryAfter;
  events.push_back(s);

  std::ostringstream out;
  write_trace_csv(out, events);
  std::istringstream in(out.str());
  const std::vector<TraceEvent> back = read_trace_csv(in);
  ASSERT_EQ(back.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(back[i], events[i]) << "row " << i;
  }
}

TEST(TraceCsv, RejectsMalformedInput) {
  {
    std::istringstream in("not,a,trace\n");
    EXPECT_THROW((void)read_trace_csv(in), PreconditionError);
  }
  {
    std::istringstream in(
        "seq,job_id,home_shard,shard,kind,latency_bin,fsync\n"
        "0,1,0,0,exploded,-,-\n");
    EXPECT_THROW((void)read_trace_csv(in), PreconditionError);
  }
  {
    std::istringstream in(
        "seq,job_id,home_shard,shard,kind,latency_bin,fsync\n"
        "0,1,0,0,accepted,3\n");
    EXPECT_THROW((void)read_trace_csv(in), PreconditionError);
  }
}

}  // namespace
}  // namespace slacksched
