// Minimal CSV writing/reading used for experiment artifacts and traces.
// Values are written with full round-trip precision so replays are exact.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace slacksched {

/// Streams rows of a CSV document with a fixed header.
class CsvWriter {
 public:
  /// Writes the header row immediately.
  CsvWriter(std::ostream& out, std::vector<std::string> header);

  /// Writes one data row; the cell count must match the header.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats doubles with round-trip precision.
  void row_numeric(const std::vector<double>& cells);

  [[nodiscard]] std::size_t rows_written() const { return rows_; }
  [[nodiscard]] std::size_t columns() const { return columns_; }

  /// Formats a double with enough digits to round-trip.
  static std::string format(double v);

 private:
  std::ostream& out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Parses a CSV document (no quoting/escaping; our writers never emit any).
/// Returns rows including the header.
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    std::istream& in);

}  // namespace slacksched
