#include "core/classify_select.hpp"

#include <algorithm>
#include <cmath>

#include "common/expects.hpp"

namespace slacksched {

int classify_select_default_machines(double eps) {
  SLACKSCHED_EXPECTS(eps > 0.0 && eps <= 1.0);
  return std::max(1, static_cast<int>(std::lround(std::log(1.0 / eps))));
}

namespace {

int resolve_virtual_machines(const ClassifySelectConfig& config) {
  return config.virtual_machines > 0
             ? config.virtual_machines
             : classify_select_default_machines(config.eps);
}

}  // namespace

ClassifySelectScheduler::ClassifySelectScheduler(
    const ClassifySelectConfig& config)
    : config_(config),
      virtual_sim_(config.eps, resolve_virtual_machines(config)),
      rng_(config.seed) {
  selected_ = static_cast<int>(
      rng_.uniform_int(0, virtual_sim_.machines() - 1));
}

void ClassifySelectScheduler::reset() {
  virtual_sim_.reset();
  // Draw the next selection from the continuing stream so that repeated
  // runs of one scheduler object explore different selections while the
  // overall sequence stays a deterministic function of the seed.
  selected_ =
      static_cast<int>(rng_.uniform_int(0, virtual_sim_.machines() - 1));
}

std::string ClassifySelectScheduler::name() const {
  return "ClassifySelect(eps=" + std::to_string(config_.eps) +
         ", virtual_m=" + std::to_string(virtual_sim_.machines()) + ")";
}

Decision ClassifySelectScheduler::on_arrival(const Job& job) {
  // Keep the virtual parallel simulation's state moving for every job —
  // including the ones we end up rejecting on the real machine.
  const Decision virtual_decision = virtual_sim_.on_arrival(job);
  if (!virtual_decision.accepted || virtual_decision.machine != selected_) {
    return Decision::reject();
  }
  // The virtual machine's committed timeline is feasible on the single real
  // machine as-is: starts are spaced by the virtual machine's own load.
  return Decision::accept(0, virtual_decision.start);
}

}  // namespace slacksched
