// Contract-checking macros in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations throw, so tests can assert on them
// and release builds still fail loudly instead of corrupting a simulation.
#pragma once

#include <stdexcept>
#include <string>

namespace slacksched {

/// Thrown when a precondition (Expects) is violated.
class PreconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Thrown when a postcondition or invariant (Ensures) is violated.
class PostconditionError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void fail_precondition(const char* expr, const char* file,
                                           int line) {
  throw PreconditionError(std::string("precondition failed: ") + expr + " at " +
                          file + ":" + std::to_string(line));
}

[[noreturn]] inline void fail_postcondition(const char* expr, const char* file,
                                            int line) {
  throw PostconditionError(std::string("postcondition failed: ") + expr +
                           " at " + file + ":" + std::to_string(line));
}

}  // namespace detail
}  // namespace slacksched

#define SLACKSCHED_EXPECTS(cond)                                        \
  do {                                                                  \
    if (!(cond))                                                        \
      ::slacksched::detail::fail_precondition(#cond, __FILE__, __LINE__); \
  } while (false)

#define SLACKSCHED_ENSURES(cond)                                          \
  do {                                                                    \
    if (!(cond))                                                          \
      ::slacksched::detail::fail_postcondition(#cond, __FILE__, __LINE__); \
  } while (false)
