#include "service/metrics_exporter.hpp"

#include <array>
#include <sstream>

#include "common/csv.hpp"
#include "policy/criticality.hpp"
#include "service/gateway.hpp"
#include "service/outcome.hpp"

namespace slacksched {

namespace {

/// Shortest round-trip decimal rendering (std::to_chars): integral values
/// print without a fractional part, everything else with exactly the
/// digits needed to reparse bit-identically.
std::string fmt(double v) { return CsvWriter::format(v); }

/// Emits one metric family: HELP/TYPE header, then samples.
class FamilyWriter {
 public:
  FamilyWriter(std::ostringstream& os, const std::string& prefix,
               const std::string& name, const std::string& help,
               const std::string& type)
      : os_(os), name_(prefix + "_" + name) {
    os_ << "# HELP " << name_ << ' ' << help << '\n';
    os_ << "# TYPE " << name_ << ' ' << type << '\n';
  }

  void sample(const std::string& labels, const std::string& value,
              const std::string& suffix = "") {
    os_ << name_ << suffix;
    if (!labels.empty()) os_ << '{' << labels << '}';
    os_ << ' ' << value << '\n';
  }

 private:
  std::ostringstream& os_;
  std::string name_;
};

std::string shard_label(std::size_t shard) {
  return "shard=\"" + std::to_string(shard) + "\"";
}

/// A counter/gauge family mapped onto a ShardMetricsSnapshot field.
template <typename T>
struct Field {
  const char* name;
  const char* help;
  const char* type;
  T ShardMetricsSnapshot::*member;
};

constexpr Field<std::size_t> kCountFields[] = {
    {"enqueued_total", "Jobs accepted into a shard submission queue.",
     "counter", &ShardMetricsSnapshot::enqueued},
    {"submitted_total", "Decisions rendered by the shard engines.",
     "counter", &ShardMetricsSnapshot::submitted},
    {"accepted_total", "Jobs admitted (committed to a machine and start).",
     "counter", &ShardMetricsSnapshot::accepted},
    {"rejected_total", "Jobs declined by the admission policy.", "counter",
     &ShardMetricsSnapshot::rejected},
    {"backpressure_rejected_total",
     "Jobs shed because the routed shard queue was full.", "counter",
     &ShardMetricsSnapshot::backpressure_rejected},
    {"degraded_rejected_total",
     "Jobs shed with retry-after because no shard was available.", "counter",
     &ShardMetricsSnapshot::degraded_rejected},
    {"failovers_total",
     "Jobs rerouted away from an unavailable home shard.", "counter",
     &ShardMetricsSnapshot::failovers},
    {"batches_total", "Consumer wake-ups that found work.", "counter",
     &ShardMetricsSnapshot::batches},
    {"recoveries_total", "Completed WAL replays / shard restarts.",
     "counter", &ShardMetricsSnapshot::recoveries},
    {"wal_records_replayed_total",
     "Commit-log records re-applied by recovery.", "counter",
     &ShardMetricsSnapshot::wal_records_replayed},
    {"wal_truncations_total", "Torn commit-log tails truncated.", "counter",
     &ShardMetricsSnapshot::wal_truncations},
};

constexpr Field<double> kVolumeFields[] = {
    {"accepted_volume_total",
     "Total processing volume of admitted jobs (sum of p_j).", "counter",
     &ShardMetricsSnapshot::accepted_volume},
    {"rejected_volume_total",
     "Total processing volume of declined jobs.", "counter",
     &ShardMetricsSnapshot::rejected_volume},
};

const char* health_state_name(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy: return "healthy";
    case ShardHealth::kDegraded: return "degraded";
    case ShardHealth::kDown: return "down";
    case ShardHealth::kRecovering: return "recovering";
  }
  return "unknown";
}

}  // namespace

std::string render_prometheus(const ExporterInput& input,
                              const ExporterOptions& options) {
  const MetricsSnapshot& snap = input.snapshot;
  std::ostringstream os;

  {
    FamilyWriter family(os, options.prefix, "shards",
                        "Number of shards in the gateway.", "gauge");
    family.sample("", std::to_string(snap.shards.size()));
  }

  for (const auto& field : kCountFields) {
    FamilyWriter family(os, options.prefix, field.name, field.help,
                        field.type);
    family.sample("", std::to_string(snap.total.*field.member));
    if (options.per_shard) {
      for (std::size_t s = 0; s < snap.shards.size(); ++s) {
        family.sample(shard_label(s),
                      std::to_string(snap.shards[s].*field.member));
      }
    }
  }

  {
    // One family keyed by the frozen outcome registry (service/outcome.hpp):
    // the label strings here are byte-identical to the trace-CSV `kind`
    // cells and the wire protocol's outcome names. kRejectedClosed is not
    // emitted — refusals after shutdown happen outside the metrics window.
    struct OutcomeField {
      Outcome outcome;
      std::size_t ShardMetricsSnapshot::* member;
    };
    static constexpr OutcomeField kOutcomeFields[] = {
        {Outcome::kEnqueued, &ShardMetricsSnapshot::enqueued},
        {Outcome::kAccepted, &ShardMetricsSnapshot::accepted},
        {Outcome::kRejected, &ShardMetricsSnapshot::rejected},
        {Outcome::kRejectedQueueFull,
         &ShardMetricsSnapshot::backpressure_rejected},
        {Outcome::kRejectedRetryAfter,
         &ShardMetricsSnapshot::degraded_rejected},
        {Outcome::kFailover, &ShardMetricsSnapshot::failovers},
        {Outcome::kRejectedCriticality,
         &ShardMetricsSnapshot::criticality_shed},
    };
    FamilyWriter family(
        os, options.prefix, "outcomes_total",
        "Submission outcomes keyed by the wire-stable outcome registry.",
        "counter");
    for (const OutcomeField& field : kOutcomeFields) {
      family.sample("outcome=\"" + std::string(outcome_label(field.outcome)) +
                        "\"",
                    std::to_string(snap.total.*field.member));
    }
  }

  {
    // Per-criticality-class outcome counters. The `class` label values are
    // the frozen criticality_label() registry (policy/criticality.hpp);
    // the `outcome` label values reuse the outcome registry above. The
    // "criticality" outcome counts jobs the class-aware shed policy
    // refused — by construction it is zero for the top class only under
    // correct low-before-high ordering.
    struct ClassOutcomeField {
      Outcome outcome;
      std::array<std::size_t, kCriticalityCount> ShardMetricsSnapshot::*
          member;
    };
    static constexpr ClassOutcomeField kClassOutcomeFields[] = {
        {Outcome::kEnqueued, &ShardMetricsSnapshot::class_enqueued},
        {Outcome::kAccepted, &ShardMetricsSnapshot::class_accepted},
        {Outcome::kRejected, &ShardMetricsSnapshot::class_rejected},
        {Outcome::kRejectedCriticality, &ShardMetricsSnapshot::class_shed},
    };
    FamilyWriter family(
        os, options.prefix, "class_outcomes_total",
        "Submission outcomes keyed by criticality class and outcome.",
        "counter");
    for (std::uint8_t cls = 0; cls < kCriticalityCount; ++cls) {
      const std::string class_label =
          "class=\"" +
          std::string(criticality_label(static_cast<Criticality>(cls))) +
          "\"";
      for (const ClassOutcomeField& field : kClassOutcomeFields) {
        family.sample(class_label + ",outcome=\"" +
                          std::string(outcome_label(field.outcome)) + "\"",
                      std::to_string(
                          (snap.total.*field.member)[cls]));
      }
    }
  }

  for (const auto& field : kVolumeFields) {
    FamilyWriter family(os, options.prefix, field.name, field.help,
                        field.type);
    family.sample("", fmt(snap.total.*field.member));
    if (options.per_shard) {
      for (std::size_t s = 0; s < snap.shards.size(); ++s) {
        family.sample(shard_label(s), fmt(snap.shards[s].*field.member));
      }
    }
  }

  {
    FamilyWriter family(os, options.prefix, "queue_depth",
                        "Jobs waiting in the shard queues right now.",
                        "gauge");
    family.sample("", std::to_string(snap.total.queue_depth));
    if (options.per_shard) {
      for (std::size_t s = 0; s < snap.shards.size(); ++s) {
        family.sample(shard_label(s),
                      std::to_string(snap.shards[s].queue_depth));
      }
    }
  }
  {
    FamilyWriter family(
        os, options.prefix, "queue_depth_peak",
        "High-water mark of queue_depth. The aggregate sample is the MAX "
        "across shards (per-shard peaks happen at different instants), not "
        "the sum of the labelled series.",
        "gauge");
    family.sample("", std::to_string(snap.total.peak_queue_depth));
    if (options.per_shard) {
      for (std::size_t s = 0; s < snap.shards.size(); ++s) {
        family.sample(shard_label(s),
                      std::to_string(snap.shards[s].peak_queue_depth));
      }
    }
  }

  {
    // The merged admit-latency histogram, Prometheus-style: cumulative
    // buckets keyed by upper edge, then +Inf, _sum and _count. Underflow
    // is <= every upper edge so it joins the first bucket; overflow only
    // reaches +Inf. (The registry clamps into the edge bins, so both are
    // zero for gateway snapshots — rendered generically regardless.)
    const Histogram& h = snap.admit_latency;
    FamilyWriter family(os, options.prefix, "admit_latency_seconds",
                        "Queue-entry to decision-rendered wall time.",
                        "histogram");
    std::size_t cumulative = h.underflow_count();
    for (std::size_t bin = 0; bin < h.bin_count(); ++bin) {
      cumulative += h.count_in_bin(bin);
      family.sample("le=\"" + fmt(h.bin_range(bin).second) + "\"",
                    std::to_string(cumulative), "_bucket");
    }
    cumulative += h.overflow_count();
    family.sample("le=\"+Inf\"", std::to_string(cumulative), "_bucket");
    family.sample("", fmt(snap.total.latency_sum_seconds), "_sum");
    family.sample("", std::to_string(cumulative), "_count");
  }

  {
    // Per-class admit-latency histograms: same log-spaced edges as the
    // merged histogram above, one labelled series per criticality class.
    // The registry clamps into the edge bins, so the top bin already plays
    // the +Inf role and the +Inf bucket equals _count exactly.
    const Histogram& edges = snap.admit_latency;
    FamilyWriter family(
        os, options.prefix, "class_admit_latency_seconds",
        "Queue-entry to decision-rendered wall time by criticality class.",
        "histogram");
    for (std::uint8_t cls = 0; cls < kCriticalityCount; ++cls) {
      const std::string class_label =
          "class=\"" +
          std::string(criticality_label(static_cast<Criticality>(cls))) +
          "\"";
      std::uint64_t cumulative = 0;
      for (std::size_t bin = 0; bin < kAdmitLatencyBins; ++bin) {
        cumulative += snap.class_latency_bins[cls][bin];
        family.sample(class_label + ",le=\"" +
                          fmt(edges.bin_range(bin).second) + "\"",
                      std::to_string(cumulative), "_bucket");
      }
      family.sample(class_label + ",le=\"+Inf\"",
                    std::to_string(cumulative), "_bucket");
      family.sample(class_label, fmt(snap.class_latency_sum[cls]), "_sum");
      family.sample(class_label, std::to_string(cumulative), "_count");
    }
  }

  if (!input.health.empty()) {
    {
      FamilyWriter family(
          os, options.prefix, "shard_health",
          "Supervision state of each shard, one-hot over "
          "healthy/degraded/down/recovering.",
          "gauge");
      for (const ShardHealthStatus& row : input.health) {
        for (const ShardHealth state :
             {ShardHealth::kHealthy, ShardHealth::kDegraded,
              ShardHealth::kDown, ShardHealth::kRecovering}) {
          family.sample(
              shard_label(static_cast<std::size_t>(row.shard)) +
                  ",state=\"" + health_state_name(state) + "\"",
              row.health == state ? "1" : "0");
        }
      }
    }
    {
      FamilyWriter family(os, options.prefix, "shard_restarts_total",
                          "Completed automatic + forced shard restarts.",
                          "counter");
      for (const ShardHealthStatus& row : input.health) {
        family.sample(shard_label(static_cast<std::size_t>(row.shard)),
                      std::to_string(row.restarts));
      }
    }
    {
      FamilyWriter family(
          os, options.prefix, "shard_circuit_broken",
          "1 once a shard exhausted its automatic restart budget.",
          "gauge");
      for (const ShardHealthStatus& row : input.health) {
        family.sample(shard_label(static_cast<std::size_t>(row.shard)),
                      row.circuit_broken ? "1" : "0");
      }
    }
  }

  if (!input.trace_dropped.empty()) {
    FamilyWriter family(
        os, options.prefix, "trace_dropped_total",
        "Trace events refused because a shard's trace ring was full.",
        "counter");
    std::uint64_t total = 0;
    for (const std::uint64_t d : input.trace_dropped) total += d;
    family.sample("", std::to_string(total));
    if (options.per_shard) {
      for (std::size_t s = 0; s < input.trace_dropped.size(); ++s) {
        family.sample(shard_label(s),
                      std::to_string(input.trace_dropped[s]));
      }
    }
  }

  return os.str();
}

std::string render_prometheus(const MetricsSnapshot& snapshot,
                              const ExporterOptions& options) {
  ExporterInput input;
  input.snapshot = snapshot;
  return render_prometheus(input, options);
}

ExporterInput collect_exporter_input(const AdmissionGateway& gateway) {
  ExporterInput input;
  input.snapshot = gateway.metrics_snapshot();
  const ShardSupervisor& supervisor = gateway.supervisor();
  input.health.reserve(static_cast<std::size_t>(gateway.shards()));
  for (int s = 0; s < gateway.shards(); ++s) {
    input.health.push_back(ShardHealthStatus{
        s, supervisor.health(s), supervisor.restarts(s),
        supervisor.circuit_broken(s)});
  }
  if (gateway.config().enable_tracing) {
    input.trace_dropped.reserve(static_cast<std::size_t>(gateway.shards()));
    for (int s = 0; s < gateway.shards(); ++s) {
      input.trace_dropped.push_back(gateway.trace_ring(s)->dropped());
    }
  }
  return input;
}

std::string render_prometheus(const AdmissionGateway& gateway,
                              const ExporterOptions& options) {
  return render_prometheus(collect_exporter_input(gateway), options);
}

}  // namespace slacksched
