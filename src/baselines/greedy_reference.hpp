// The seed implementation of the greedy admission baselines, retained
// verbatim as the differential oracle for the FrontierSet-based
// GreedyScheduler. Linear O(m) scan per arrival; only tests and benches
// should instantiate it. Do not change its decision logic.
#pragma once

#include <string>
#include <vector>

#include "baselines/greedy.hpp"
#include "sched/online.hpp"

namespace slacksched {

/// Linear-scan reference implementation of GreedyScheduler; semantically
/// identical decision stream for every policy.
class ReferenceGreedyScheduler final : public OnlineScheduler {
 public:
  explicit ReferenceGreedyScheduler(int machines,
                                    GreedyPolicy policy = GreedyPolicy::kBestFit);

  Decision on_arrival(const Job& job) override;
  [[nodiscard]] int machines() const override;
  void reset() override;
  [[nodiscard]] std::string name() const override;

 private:
  int machines_;
  GreedyPolicy policy_;
  std::vector<TimePoint> frontier_;
};

}  // namespace slacksched
