// Tests for the background metrics publisher: the atomic
// write-temp-then-rename contract, the final publish on stop, periodic
// background publication, error reporting, and the gateway integration
// (the textfile on disk after finish() equals the final counters).
#include "service/metrics_publisher.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baselines/greedy.hpp"
#include "service/gateway.hpp"
#include "service/metrics_exporter.hpp"

namespace slacksched {
namespace {

std::string textfile_path(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "slacksched_metrics_" + name + ".prom";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool exists(const std::string& path) {
  return std::ifstream(path).good();
}

TEST(MetricsPublisher, PublishNowReplacesAtomicallyAndLeavesNoTemp) {
  const std::string path = textfile_path("replace");
  std::atomic<int> version{1};
  MetricsPublisher publisher(
      PublisherConfig{path, std::chrono::milliseconds(60000), 0.1, 0},
      [&version] { return "page v" + std::to_string(version.load()) + "\n"; });
  ASSERT_TRUE(publisher.publish_now());
  EXPECT_EQ(slurp(path), "page v1\n");
  version.store(2);
  ASSERT_TRUE(publisher.publish_now());
  EXPECT_EQ(slurp(path), "page v2\n");
  EXPECT_FALSE(exists(path + ".tmp"));  // staging file was renamed away
  EXPECT_GE(publisher.publishes(), 2u);
  EXPECT_TRUE(publisher.last_error().empty());
}

TEST(MetricsPublisher, StopPublishesTheFinalPageEvenBeforeThePeriod) {
  const std::string path = textfile_path("final");
  std::atomic<int> calls{0};
  MetricsPublisher publisher(
      // A period far longer than the test: only stop() can publish.
      PublisherConfig{path, std::chrono::milliseconds(60000), 0.0, 0},
      [&calls] {
        calls.fetch_add(1);
        return std::string("final page\n");
      });
  publisher.start();
  publisher.stop();
  EXPECT_EQ(slurp(path), "final page\n");
  EXPECT_GE(calls.load(), 1);
  EXPECT_GE(publisher.publishes(), 1u);
  // stop() is idempotent.
  publisher.stop();
}

TEST(MetricsPublisher, PublishesPeriodicallyInTheBackground) {
  const std::string path = textfile_path("periodic");
  MetricsPublisher publisher(
      PublisherConfig{path, std::chrono::milliseconds(5), 0.2, 42},
      [] { return std::string("tick\n"); });
  publisher.start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (publisher.publishes() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  publisher.stop();
  EXPECT_GE(publisher.publishes(), 3u);
  EXPECT_EQ(slurp(path), "tick\n");
}

TEST(MetricsPublisher, ReportsWriteFailuresInLastError) {
  MetricsPublisher publisher(
      PublisherConfig{::testing::TempDir() + "no-such-dir/metrics.prom",
                      std::chrono::milliseconds(60000), 0.1, 0},
      [] { return std::string("page\n"); });
  EXPECT_FALSE(publisher.publish_now());
  EXPECT_FALSE(publisher.last_error().empty());
  EXPECT_EQ(publisher.publishes(), 0u);
}

TEST(MetricsPublisher, GatewayTextfileEqualsFinalCountersAfterFinish) {
  const std::string path = textfile_path("gateway");
  GatewayConfig config;
  config.shards = 2;
  config.queue_capacity = 1024;
  config.enable_tracing = true;
  config.metrics_textfile = path;
  config.metrics_period = std::chrono::milliseconds(10);
  auto gateway = std::make_unique<AdmissionGateway>(
      config, [](int) { return std::make_unique<GreedyScheduler>(2); });
  ASSERT_NE(gateway->metrics_publisher(), nullptr);
  std::vector<Job> jobs;
  for (JobId id = 0; id < 300; ++id) {
    Job j;
    j.id = id;
    j.release = 0.0;
    j.proc = 1.0;
    j.deadline = 10.0;
    jobs.push_back(j);
  }
  const BatchSubmitResult batch = gateway->submit_batch(jobs);
  ASSERT_EQ(batch.enqueued, jobs.size());
  const GatewayResult result = gateway->finish();
  const std::uint64_t publishes = gateway->metrics_publisher()->publishes();
  EXPECT_GE(publishes, 1u);  // at least the final page from finish()

  // finish() stops the publisher after the shards quiesce, so the file on
  // disk reports exactly the final counters — scrape-parseable truth.
  const std::string page = slurp(path);
  EXPECT_NE(page.find("slacksched_submitted_total " +
                      std::to_string(result.merged.submitted) + "\n"),
            std::string::npos)
      << page;
  EXPECT_NE(page.find("slacksched_admit_latency_seconds_count " +
                      std::to_string(result.merged.submitted) + "\n"),
            std::string::npos);
  // Destroying the gateway must not publish again (already stopped).
  gateway.reset();
  EXPECT_EQ(slurp(path), page);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace slacksched
