#include "baselines/greedy_reference.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace slacksched {

ReferenceGreedyScheduler::ReferenceGreedyScheduler(int machines,
                                                   GreedyPolicy policy)
    : machines_(machines),
      policy_(policy),
      frontier_(static_cast<std::size_t>(machines), 0.0) {
  SLACKSCHED_EXPECTS(machines >= 1);
}

int ReferenceGreedyScheduler::machines() const { return machines_; }

void ReferenceGreedyScheduler::reset() {
  std::fill(frontier_.begin(), frontier_.end(), 0.0);
}

std::string ReferenceGreedyScheduler::name() const {
  return "ReferenceGreedy[" + to_string(policy_) +
         "](m=" + std::to_string(machines_) + ")";
}

Decision ReferenceGreedyScheduler::on_arrival(const Job& job) {
  SLACKSCHED_EXPECTS(job.structurally_valid());
  const TimePoint t = job.release;

  int chosen = -1;
  Duration chosen_load = 0.0;
  for (int i = 0; i < machines_; ++i) {
    const Duration load =
        std::max(0.0, frontier_[static_cast<std::size_t>(i)] - t);
    if (!approx_le(t + load + job.proc, job.deadline)) continue;
    bool better = false;
    if (chosen < 0) {
      better = true;
    } else {
      switch (policy_) {
        case GreedyPolicy::kBestFit:
          better = load > chosen_load;
          break;
        case GreedyPolicy::kFirstFit:
          better = false;  // first candidate wins
          break;
        case GreedyPolicy::kLeastLoaded:
          better = load < chosen_load;
          break;
      }
    }
    if (better) {
      chosen = i;
      chosen_load = load;
    }
  }
  if (chosen < 0) return Decision::reject();

  const TimePoint start = t + chosen_load;
  frontier_[static_cast<std::size_t>(chosen)] = start + job.proc;
  return Decision::accept(chosen, start);
}

}  // namespace slacksched
