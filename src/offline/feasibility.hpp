// Preemptive feasibility tests built on the max-flow substrate.
//
// With preemption AND migration on m identical machines, a set of jobs is
// schedulable iff the natural job->interval flow network saturates every
// job edge (the classic flow formulation of P|r_j, d_j, pmtn|-). This is
// exact — not a relaxation — for the migration model, and it is the
// admission oracle of the migration baseline.
#pragma once

#include <vector>

#include "job/job.hpp"

namespace slacksched {

/// A job fragment still to be executed: `remaining` units available from
/// `now`, due by `deadline`.
struct RemainingJob {
  JobId id = 0;
  Duration remaining = 0.0;
  TimePoint deadline = 0.0;
};

/// Exact feasibility of completing all fragments within their deadlines
/// on `machines` identical machines with preemption and migration,
/// starting at time `now` (all fragments are available).
[[nodiscard]] bool preemptive_migration_feasible(
    const std::vector<RemainingJob>& fragments, int machines, TimePoint now);

/// Exact feasibility for full jobs with release dates (preemption +
/// migration): max flow over release/deadline event intervals.
[[nodiscard]] bool preemptive_migration_feasible_jobs(
    const std::vector<Job>& jobs, int machines);

}  // namespace slacksched
