// Exact offline optimum for small instances.
//
// The offline problem (choose a subset of jobs and a legal non-preemptive
// m-machine schedule maximizing accepted volume) is NP-hard, but small
// instances solve quickly with branch-and-bound:
//   * subsets are explored by inclusion/exclusion over jobs sorted by
//     decreasing processing time, pruned by the remaining-volume bound and
//     by monotonicity (supersets of an infeasible set are infeasible);
//   * feasibility of a fixed subset is decided by dispatch-order DFS with
//     left-shifted starts (any feasible schedule can be left-shifted, so
//     searching dispatch orders with earliest starts is complete), with a
//     visited-state memo on (job mask, sorted machine frontiers).
// Used by tests and benches as ground truth against online algorithms.
#pragma once

#include <cstddef>
#include <vector>

#include "job/instance.hpp"
#include "sched/schedule.hpp"

namespace slacksched {

/// Hard cap on instance size for the exact solver.
inline constexpr std::size_t kExactSolverMaxJobs = 24;

/// Result of the exact search.
struct ExactResult {
  double value = 0.0;               ///< optimal accepted volume
  std::vector<JobId> accepted;      ///< one optimal accepted set
  std::size_t feasibility_checks = 0;
};

/// Computes the exact offline optimum. Requires
/// instance.size() <= kExactSolverMaxJobs.
[[nodiscard]] ExactResult exact_optimal_load(const Instance& instance,
                                             int machines);

/// Decides whether all `jobs` can be scheduled non-preemptively on
/// `machines` identical machines meeting every deadline.
[[nodiscard]] bool exact_feasible(const std::vector<Job>& jobs, int machines);

}  // namespace slacksched
