#include "net/admission_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>
#include <utility>

#include "common/expects.hpp"
#include "service/metrics_exporter.hpp"

namespace slacksched::net {

namespace {

/// Per-loop epoll user-data ids for the two non-connection descriptors.
/// Connection ids start at kFirstConnId and stride by the loop count, so
/// every id is globally unique and owned by exactly one loop.
constexpr std::uint64_t kListenerTag = 0;
constexpr std::uint64_t kEventFdTag = 1;
constexpr std::uint64_t kFirstConnId = 2;

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  // Pipelined request/response traffic; Nagle only adds latency here.
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Opens a bound, listening, non-blocking IPv4 socket. When `reuseport`
/// is requested and the kernel refuses the option, `reuseport_ok` (when
/// non-null) is cleared and the listener proceeds without it — the caller
/// falls back to single-acceptor handoff; with a null `reuseport_ok` the
/// refusal throws (the fallback decision was already made).
int open_listener(const std::string& address, std::uint16_t port,
                  int backlog, bool reuseport, bool* reuseport_ok) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("socket");
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
      if (reuseport_ok == nullptr) {
        const int saved = errno;
        ::close(fd);
        errno = saved;
        throw_errno("setsockopt(SO_REUSEPORT)");
      }
      *reuseport_ok = false;
    }
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw NetError("bad bind address: " + address);
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("bind " + address + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("listen");
  }
  return fd;
}

}  // namespace

std::vector<std::string> AdmissionServerConfig::validate() const {
  std::vector<std::string> errors;
  if (bind_address.empty()) {
    errors.push_back("bind_address must not be empty");
  }
  if (backlog < 1) {
    errors.push_back("backlog must be >= 1 (got " + std::to_string(backlog) +
                     ")");
  }
  if (loops < 1) {
    errors.push_back("loops must be >= 1 (got " + std::to_string(loops) +
                     ")");
  }
  if (max_http_request < 64) {
    errors.push_back("max_http_request must be >= 64 bytes (got " +
                     std::to_string(max_http_request) +
                     "): no request line and headers fit below that");
  }
  if (idle_timeout.count() < 0) {
    errors.push_back("idle_timeout must be >= 0ms (got " +
                     std::to_string(idle_timeout.count()) +
                     "ms); 0 disables reaping");
  }
  if (idle_timeout.count() != 0 && reap_interval.count() < 1) {
    errors.push_back(
        "reap_interval must be >= 1ms when idle_timeout is enabled (got " +
        std::to_string(reap_interval.count()) +
        "ms): the reap scan would busy-loop");
  }
  if (accept_backoff.count() < 1) {
    errors.push_back("accept_backoff must be >= 1ms (got " +
                     std::to_string(accept_backoff.count()) +
                     "ms): a starved listener would hot-spin");
  }
  for (const std::string& problem : gateway.validate()) {
    errors.push_back("gateway: " + problem);
  }
  return errors;
}

AdmissionServer::AdmissionServer(const AdmissionServerConfig& config,
                                 const ShardSchedulerFactory& factory)
    : config_(config) {
  // Refuse to start on an invalid shape: report every problem in one
  // exception, before any socket exists.
  const std::vector<std::string> errors = config_.validate();
  if (!errors.empty()) {
    std::string joined =
        "AdmissionServer refused to start: invalid AdmissionServerConfig:";
    for (const std::string& e : errors) joined += "\n  - " + e;
    throw PreconditionError(joined);
  }

  const auto n_loops = static_cast<std::size_t>(config_.loops);
  loops_.reserve(n_loops);
  for (std::size_t i = 0; i < n_loops; ++i) {
    loops_.push_back(std::make_unique<EventLoop>());
    EventLoop& loop = *loops_.back();
    loop.index = static_cast<int>(i);
    // Stride the id space by the loop count: ids stay globally unique, a
    // connection's owning loop is id mod loops, and every id clears the
    // reserved listener/eventfd tags.
    loop.next_conn_id = kFirstConnId * n_loops + i;
  }

  try {
    // Accept distribution. Preferred: one SO_REUSEPORT listener per loop,
    // the kernel spreading connections across them. Fallback (option
    // refused, or configured off): loop 0 owns the only listener and
    // hands accepted fds round-robin to the other loops.
    const bool want_reuseport = config_.so_reuseport && config_.loops > 1;
    bool option_ok = want_reuseport;
    loops_[0]->listen_fd =
        open_listener(config_.bind_address, config_.port, config_.backlog,
                      want_reuseport, &option_ok);
    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(loops_[0]->listen_fd,
                      reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
      throw_errno("getsockname");
    }
    port_ = ntohs(bound.sin_port);
    reuseport_ = want_reuseport && option_ok;
    if (reuseport_) {
      for (std::size_t i = 1; i < n_loops; ++i) {
        loops_[i]->listen_fd =
            open_listener(config_.bind_address, port_, config_.backlog,
                          /*reuseport=*/true, /*reuseport_ok=*/nullptr);
      }
    }

    for (auto& loop_ptr : loops_) {
      EventLoop& loop = *loop_ptr;
      loop.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
      if (loop.epoll_fd < 0) throw_errno("epoll_create1");
      loop.event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (loop.event_fd < 0) throw_errno("eventfd");
      epoll_event ev{};
      ev.events = EPOLLIN;
      ev.data.u64 = kEventFdTag;
      if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.event_fd, &ev) !=
          0) {
        throw_errno("epoll_ctl(eventfd)");
      }
      if (loop.listen_fd >= 0) {
        ev.events = EPOLLIN;
        ev.data.u64 = kListenerTag;
        if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, loop.listen_fd, &ev) !=
            0) {
          throw_errno("epoll_ctl(listener)");
        }
      }
    }

    // The gateway comes up after the response plumbing (eventfds, per-loop
    // outboxes) exists: its shard threads may invoke the decision hook as
    // soon as the first job is enqueued. A user-supplied hook is chained,
    // not replaced. route_ctx carries the owning loop's index from
    // submit to decision.
    GatewayConfig gateway_config = config_.gateway;
    GatewayDecisionCallback user_hook = gateway_config.on_decision;
    gateway_config.on_decision =
        [this, user_hook = std::move(user_hook)](
            int shard, const Job& job, const Decision& decision,
            std::uint64_t route_ctx) {
          if (user_hook) user_hook(shard, job, decision, route_ctx);
          on_gateway_decision(job, decision, route_ctx);
        };
    gateway_ = std::make_unique<AdmissionGateway>(gateway_config, factory);

    for (auto& loop_ptr : loops_) {
      EventLoop& loop = *loop_ptr;
      loop.thread = std::thread([this, &loop] { event_loop(loop); });
    }
  } catch (...) {
    // Unwind half-built plumbing: join any loops already running, then
    // close every descriptor created so far.
    stop_.store(true, std::memory_order_release);
    for (auto& loop_ptr : loops_) {
      if (loop_ptr->event_fd >= 0) wake_loop(*loop_ptr);
    }
    for (auto& loop_ptr : loops_) {
      if (loop_ptr->thread.joinable()) loop_ptr->thread.join();
      if (loop_ptr->listen_fd >= 0) ::close(loop_ptr->listen_fd);
      if (loop_ptr->epoll_fd >= 0) ::close(loop_ptr->epoll_fd);
      if (loop_ptr->event_fd >= 0) ::close(loop_ptr->event_fd);
    }
    throw;
  }
}

AdmissionServer::~AdmissionServer() {
  try {
    (void)shutdown();
  } catch (...) {
    // Destructors must not throw; shutdown errors die here.
  }
}

GatewayResult AdmissionServer::shutdown() {
  if (!shutdown_done_.exchange(true, std::memory_order_acq_rel)) {
    stop_.store(true, std::memory_order_release);
    for (auto& loop_ptr : loops_) wake_loop(*loop_ptr);
    for (auto& loop_ptr : loops_) {
      if (loop_ptr->thread.joinable()) loop_ptr->thread.join();
    }
    if (!drained_.load(std::memory_order_acquire)) finish_gateway();
    for (auto& loop_ptr : loops_) {
      if (loop_ptr->listen_fd >= 0) ::close(loop_ptr->listen_fd);
      if (loop_ptr->epoll_fd >= 0) ::close(loop_ptr->epoll_fd);
      if (loop_ptr->event_fd >= 0) ::close(loop_ptr->event_fd);
      loop_ptr->listen_fd = loop_ptr->epoll_fd = loop_ptr->event_fd = -1;
    }
  }
  std::lock_guard lock(result_mutex_);
  return result_;
}

void AdmissionServer::finish_gateway() {
  // Loop threads can race a DRAIN each; exactly one runs finish(), the
  // others wait here and reuse the cached result.
  std::lock_guard finish_lock(finish_mutex_);
  if (drained_.load(std::memory_order_acquire)) return;
  GatewayResult result = gateway_->finish();
  {
    std::lock_guard lock(result_mutex_);
    result_ = std::move(result);
  }
  drained_.store(true, std::memory_order_release);
}

void AdmissionServer::wake_loop(EventLoop& loop) {
  std::uint64_t wake = 1;
  (void)::write(loop.event_fd, &wake, sizeof(wake));
}

void AdmissionServer::on_gateway_decision(const Job& job,
                                          const Decision& decision,
                                          std::uint64_t route_ctx) {
  // route_ctx is the submitting loop's index; anything else (embedding
  // processes calling gateway().submit() directly pass 0) resolves to
  // loop 0, whose pending map simply has no slot for it.
  EventLoop& loop =
      *loops_[route_ctx < loops_.size() ? static_cast<std::size_t>(route_ctx)
                                        : 0];
  PendingReply reply;
  {
    std::lock_guard lock(loop.pending_mutex);
    auto it = loop.pending.find(job.id);
    if (it == loop.pending.end() || it->second.empty()) return;
    reply = it->second.front();
    it->second.pop_front();
    if (it->second.empty()) loop.pending.erase(it);
    // Deliberately NOT the place the owed count drops: this runs on a
    // shard thread, and a reap tick on the loop thread could land between
    // this decrement and the outbox drain that actually writes the
    // DECISION — closing the connection with the reply still staged. The
    // count drops in drain_outbox, on the loop thread, after delivery.
  }
  DecisionMsg msg;
  msg.request_id = reply.request_id;
  msg.job_id = job.id;
  msg.outcome = decision.accepted ? Outcome::kAccepted : Outcome::kRejected;
  msg.machine = decision.accepted ? decision.machine : -1;
  msg.start = decision.accepted ? decision.start : 0.0;
  bool wake = false;
  {
    // Encode straight into the owning loop's outbox arena: no
    // per-decision allocation, and the eventfd is written only by the
    // append that found the outbox empty — consecutive decisions coalesce
    // into one wake-up and one writev per connection.
    std::lock_guard lock(loop.outbox_mutex);
    wake = loop.outbox.empty();
    const auto offset = static_cast<std::uint32_t>(loop.outbox.bytes.size());
    encode_decision(loop.outbox.bytes, msg);
    loop.outbox.entries.push_back(Outbox::Entry{
        reply.conn_id, offset,
        static_cast<std::uint32_t>(loop.outbox.bytes.size() - offset)});
  }
  if (wake) wake_loop(loop);
}

void AdmissionServer::event_loop(EventLoop& loop) {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  // With a reaper the wait becomes a tick (so idleness is noticed without
  // any descriptor firing); without one it blocks indefinitely, the
  // original zero-wakeup behavior. A disarmed listener shortens the wait
  // to its rearm deadline.
  const bool reaping = config_.idle_timeout.count() > 0;
  auto next_reap = std::chrono::steady_clock::now() + config_.reap_interval;
  while (!stop_.load(std::memory_order_acquire)) {
    int wait_ms =
        reaping ? static_cast<int>(config_.reap_interval.count()) : -1;
    if (!loop.listener_armed) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= loop.rearm_at) {
        rearm_listener(loop);
      } else {
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(
                loop.rearm_at - now)
                .count() +
            1;
        const int rearm_ms = static_cast<int>(
            std::min<long long>(remaining, std::numeric_limits<int>::max()));
        wait_ms = wait_ms < 0 ? rearm_ms : std::min(wait_ms, rearm_ms);
      }
    }
    const int n = ::epoll_wait(loop.epoll_fd, events, kMaxEvents, wait_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone: shutdown is tearing the loop down
    }
    if (reaping) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= next_reap) {
        reap_idle(loop, now);
        next_reap = now + config_.reap_interval;
      }
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t tag = events[i].data.u64;
      if (tag == kListenerTag) {
        accept_ready(loop);
        continue;
      }
      if (tag == kEventFdTag) {
        std::uint64_t signal = 0;
        (void)::read(loop.event_fd, &signal, sizeof(signal));
        std::vector<int> adopted;
        {
          std::lock_guard lock(loop.handoff_mutex);
          adopted.swap(loop.handoff);
        }
        for (const int fd : adopted) adopt_connection(loop, fd);
        drain_outbox(loop);
        // Another loop's DRAIN quiesced the gateway: no decision can
        // arrive for this loop's leftovers either, so answer them now.
        if (drained_.load(std::memory_order_acquire)) {
          reject_loop_pending(loop);
        }
        continue;
      }
      auto it = loop.connections.find(tag);
      if (it == loop.connections.end()) continue;  // closed this wake
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        close_connection(loop, tag);
        continue;
      }
      if ((events[i].events & EPOLLIN) != 0) read_ready(loop, conn);
      // read_ready may have closed the connection; re-find before writing.
      auto again = loop.connections.find(tag);
      if (again == loop.connections.end()) continue;
      if ((events[i].events & EPOLLOUT) != 0) {
        write_ready(loop, *again->second);
      }
    }
  }
  // Loop exit: close every owned connection (the sockets answer RST from
  // here) and any handed-off fds never adopted.
  std::vector<std::uint64_t> ids;
  ids.reserve(loop.connections.size());
  for (const auto& [id, conn] : loop.connections) ids.push_back(id);
  for (const std::uint64_t id : ids) close_connection(loop, id);
  {
    std::lock_guard lock(loop.handoff_mutex);
    for (const int fd : loop.handoff) ::close(fd);
    loop.handoff.clear();
  }
}

void AdmissionServer::accept_ready(EventLoop& loop) {
  while (loop.listener_armed) {
    const int fd = ::accept4(loop.listen_fd, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;  // interrupted, not empty: retry
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds or kernel memory. The backlog keeps the
        // level-triggered listener readable, so without a pause this loop
        // would spin accept4/EMFILE at 100% CPU. Disarm the listener and
        // retry after accept_backoff.
        accept_errors_.fetch_add(1, std::memory_order_relaxed);
        disarm_listener(loop);
        return;
      }
      // Per-connection failure (ECONNABORTED and friends): that one
      // connection is gone, the listener is fine.
      accept_errors_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!reuseport_ && loops_.size() > 1) {
      // Single-acceptor fallback: round-robin the new connection across
      // loops; remote loops adopt it on their next eventfd wake.
      EventLoop& target = *loops_[handoff_cursor_++ % loops_.size()];
      if (&target != &loop) {
        {
          std::lock_guard lock(target.handoff_mutex);
          target.handoff.push_back(fd);
        }
        wake_loop(target);
        continue;
      }
    }
    adopt_connection(loop, fd);
  }
}

void AdmissionServer::adopt_connection(EventLoop& loop, int fd) {
  set_nodelay(fd);
  auto conn = std::make_unique<Connection>();
  conn->fd = fd;
  conn->id = loop.next_conn_id;
  loop.next_conn_id += loops_.size();
  conn->last_activity = std::chrono::steady_clock::now();
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = conn->id;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  loop.connections[conn->id] = std::move(conn);
}

void AdmissionServer::disarm_listener(EventLoop& loop) {
  if (!loop.listener_armed || loop.listen_fd < 0) return;
  epoll_event ev{};
  ev.events = 0;  // stay registered, report nothing
  ev.data.u64 = kListenerTag;
  (void)::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, loop.listen_fd, &ev);
  loop.listener_armed = false;
  loop.rearm_at = std::chrono::steady_clock::now() + config_.accept_backoff;
}

void AdmissionServer::rearm_listener(EventLoop& loop) {
  if (loop.listener_armed || loop.listen_fd < 0) return;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  (void)::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, loop.listen_fd, &ev);
  // Level-triggered: connections still parked in the backlog re-fire
  // EPOLLIN on the next wait immediately.
  loop.listener_armed = true;
}

void AdmissionServer::read_ready(EventLoop& loop, Connection& conn) {
  char buf[65536];
  bool peer_closed = false;
  conn.last_activity = std::chrono::steady_clock::now();
  while (true) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      const auto len = static_cast<std::size_t>(n);
      if (conn.is_http == -1) {
        conn.http_request.append(buf, len);
        // Classify on the first byte that rules "GET " out: a binary
        // client that writes fewer than 4 bytes and then waits (say, a
        // partial frame header) must still reach the FrameDecoder.
        const std::size_t have =
            std::min<std::size_t>(conn.http_request.size(), 4);
        if (conn.http_request.compare(0, have, "GET ", have) != 0) {
          conn.is_http = 0;
          conn.decoder.feed(conn.http_request.data(),
                            conn.http_request.size());
          conn.http_request.clear();
          conn.http_request.shrink_to_fit();
        } else if (conn.http_request.size() >= 4) {
          conn.is_http = 1;
        }
        // else: still an exact proper prefix of "GET "; keep sniffing.
      } else if (conn.is_http == 1) {
        conn.http_request.append(buf, len);
      } else {
        conn.decoder.feed(buf, len);
      }
      continue;
    }
    if (n == 0) {
      peer_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    peer_closed = true;  // fatal socket error
    break;
  }

  if (conn.is_http == 1) {
    if (conn.http_request.size() > config_.max_http_request) {
      conn.dead = true;
    } else if (conn.http_request.find("\r\n\r\n") != std::string::npos) {
      handle_http(loop, conn);
    }
  } else if (conn.is_http == 0) {
    Frame frame;
    while (!conn.dead && !conn.close_after_flush) {
      const FrameDecoder::Status status = conn.decoder.next(frame);
      if (status == FrameDecoder::Status::kNeedMore) break;
      if (status == FrameDecoder::Status::kError) {
        send_protocol_error(loop, conn, conn.decoder.error());
        break;
      }
      handle_frame(loop, conn, frame);
    }
  }

  if (conn.dead || peer_closed ||
      (conn.close_after_flush && conn.write_pos == conn.write_buffer.size())) {
    // A half-closed peer that still owes us a flush keeps the connection
    // until the buffer empties only if it asked for a response; with the
    // read side gone we cannot tell, so close outright.
    close_connection(loop, conn.id);
  }
}

void AdmissionServer::write_ready(EventLoop& loop, Connection& conn) {
  flush(conn);
  if (conn.dead ||
      (conn.close_after_flush && conn.write_pos == conn.write_buffer.size())) {
    close_connection(loop, conn.id);
    return;
  }
  update_epoll(loop, conn);
}

void AdmissionServer::handle_frame(EventLoop& loop, Connection& conn,
                                   const Frame& frame) {
  std::string error;
  switch (frame.type) {
    case FrameType::kSubmit: {
      SubmitMsg msg;
      if (!parse_submit(frame, msg, &error)) {
        send_protocol_error(loop, conn, error);
        return;
      }
      handle_submit_one(loop, conn, msg.request_id, msg.job);
      return;
    }
    case FrameType::kSubmitBatch: {
      std::uint64_t base = 0;
      // Decoded into the loop's reusable scratch (one memcpy on matching
      // layouts) and handed to the gateway as a span: no per-frame job
      // vector, no intermediate copy.
      if (!parse_submit_batch_into(frame, base, loop.batch_scratch,
                                   &error)) {
        send_protocol_error(loop, conn, error);
        return;
      }
      handle_submit_batch(loop, conn, base,
                          std::span<const Job>(loop.batch_scratch));
      return;
    }
    case FrameType::kPing: {
      std::uint64_t token = 0;
      if (!parse_token(frame, token, &error)) {
        send_protocol_error(loop, conn, error);
        return;
      }
      std::vector<char> bytes;
      encode_pong(bytes, token);
      queue_frame(loop, conn, bytes);
      return;
    }
    case FrameType::kDrain:
      handle_drain(loop, conn);
      return;
    case FrameType::kError:
      // The peer reported a violation on our stream; nothing to answer.
      conn.dead = true;
      return;
    case FrameType::kDecision:
    case FrameType::kReject:
    case FrameType::kDrained:
    case FrameType::kPong:
      send_protocol_error(loop, conn,
                          "server-bound stream carried a "
                          "server-to-client frame");
      return;
  }
  send_protocol_error(loop, conn, "unhandled frame type");
}

RejectMsg AdmissionServer::make_reject(std::uint64_t request_id,
                                       JobId job_id, Outcome outcome) const {
  RejectMsg msg;
  msg.request_id = request_id;
  msg.job_id = job_id;
  msg.outcome = outcome;
  if (outcome == Outcome::kRejectedRetryAfter) {
    msg.retry_after_ms =
        static_cast<std::uint32_t>(gateway_->retry_after().count());
  }
  return msg;
}

void AdmissionServer::handle_submit_one(EventLoop& loop, Connection& conn,
                                        std::uint64_t request_id,
                                        const Job& job) {
  loop.reply_scratch.clear();
  std::vector<char>& bytes = loop.reply_scratch;
  if (drained_.load(std::memory_order_acquire)) {
    encode_reject(bytes,
                  make_reject(request_id, job.id, Outcome::kRejectedClosed));
    queue_frame(loop, conn, bytes);
    return;
  }
  // Register the reply slot BEFORE the submit: the shard may render the
  // decision (and run the hook) before submit() even returns. The owed
  // count makes the connection reaper-exempt for as long as any decision
  // is outstanding.
  {
    std::lock_guard lock(loop.pending_mutex);
    loop.pending[job.id].push_back(PendingReply{conn.id, request_id});
    ++loop.owed[conn.id];
  }
  const Outcome status =
      gateway_->submit(job, static_cast<std::uint64_t>(loop.index));
  if (status == Outcome::kEnqueued) return;  // DECISION will follow
  // Shed synchronously: no decision is owed, so take the slot back. The
  // newest matching entry is ours (a racing decision consumes the oldest).
  {
    std::lock_guard lock(loop.pending_mutex);
    auto it = loop.pending.find(job.id);
    if (it != loop.pending.end()) {
      auto& queue = it->second;
      for (auto rit = queue.rbegin(); rit != queue.rend(); ++rit) {
        if (rit->conn_id == conn.id && rit->request_id == request_id) {
          queue.erase(std::next(rit).base());
          auto owed_it = loop.owed.find(conn.id);
          if (owed_it != loop.owed.end() && --owed_it->second == 0) {
            loop.owed.erase(owed_it);
          }
          break;
        }
      }
      if (queue.empty()) loop.pending.erase(it);
    }
  }
  encode_reject(bytes, make_reject(request_id, job.id, status));
  queue_frame(loop, conn, bytes);
}

void AdmissionServer::handle_submit_batch(EventLoop& loop, Connection& conn,
                                          std::uint64_t base_request_id,
                                          std::span<const Job> jobs) {
  loop.reply_scratch.clear();
  std::vector<char>& bytes = loop.reply_scratch;
  if (drained_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      encode_reject(bytes, make_reject(base_request_id + i, jobs[i].id,
                                       Outcome::kRejectedClosed));
    }
    queue_bytes(loop, conn, bytes.data(), bytes.size());
    return;
  }
  {
    std::lock_guard lock(loop.pending_mutex);
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      loop.pending[jobs[i].id].push_back(
          PendingReply{conn.id, base_request_id + i});
    }
    loop.owed[conn.id] += static_cast<std::uint32_t>(jobs.size());
  }
  (void)gateway_->submit_batch(jobs, &loop.status_scratch,
                               static_cast<std::uint64_t>(loop.index));
  const std::vector<Outcome>& statuses = loop.status_scratch;
  // Reclaim the slots of synchronously shed jobs and answer them now.
  {
    std::lock_guard lock(loop.pending_mutex);
    std::uint32_t reclaimed = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      if (statuses[i] == Outcome::kEnqueued) continue;
      auto it = loop.pending.find(jobs[i].id);
      if (it == loop.pending.end()) continue;
      auto& queue = it->second;
      for (auto rit = queue.rbegin(); rit != queue.rend(); ++rit) {
        if (rit->conn_id == conn.id &&
            rit->request_id == base_request_id + i) {
          queue.erase(std::next(rit).base());
          ++reclaimed;
          break;
        }
      }
      if (queue.empty()) loop.pending.erase(it);
    }
    if (reclaimed > 0) {
      auto owed_it = loop.owed.find(conn.id);
      if (owed_it != loop.owed.end()) {
        owed_it->second -= std::min(owed_it->second, reclaimed);
        if (owed_it->second == 0) loop.owed.erase(owed_it);
      }
    }
  }
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (statuses[i] == Outcome::kEnqueued) continue;
    encode_reject(bytes, make_reject(base_request_id + i, jobs[i].id,
                                     statuses[i]));
  }
  if (!bytes.empty()) queue_bytes(loop, conn, bytes.data(), bytes.size());
}

void AdmissionServer::handle_drain(EventLoop& loop, Connection& conn) {
  if (!drained_.load(std::memory_order_acquire)) {
    // finish() blocks this loop thread while the shards drain their
    // queues. Decision hooks keep firing meanwhile, but they only append
    // to per-loop outboxes and signal eventfds — no deadlock — and by the
    // time finish() returns every decision has been rendered and staged.
    finish_gateway();
  }
  // Wake the other loops: with drained_ set they drain their outboxes and
  // reject their own leftovers on the next eventfd wake.
  for (auto& other : loops_) {
    if (other.get() != &loop) wake_loop(*other);
  }
  drain_outbox(loop);
  reject_loop_pending(loop);
  DrainedMsg msg;
  {
    std::lock_guard lock(result_mutex_);
    msg.submitted = result_.merged.submitted;
    msg.accepted = result_.merged.accepted;
    msg.rejected = result_.merged.rejected;
    msg.accepted_volume = result_.merged.accepted_volume;
    msg.rejected_volume = result_.merged.rejected_volume;
    msg.makespan = result_.merged.makespan;
    msg.clean = result_.clean() ? 1 : 0;
  }
  std::vector<char> bytes;
  encode_drained(bytes, msg);
  queue_frame(loop, conn, bytes);
}

void AdmissionServer::reject_loop_pending(EventLoop& loop) {
  std::unordered_map<JobId, std::deque<PendingReply>> leftovers;
  {
    std::lock_guard lock(loop.pending_mutex);
    if (loop.pending.empty()) {
      loop.owed.clear();
      return;
    }
    leftovers.swap(loop.pending);
    loop.owed.clear();
  }
  // A leftover means the job was enqueued but its shard never rendered a
  // decision (poisoned by a violation with halt_on_violation, or the
  // worker crashed without a restart). The submission contract still owes
  // one answer: closed, no decision.
  for (const auto& [job_id, queue] : leftovers) {
    for (const PendingReply& reply : queue) {
      auto it = loop.connections.find(reply.conn_id);
      if (it == loop.connections.end()) continue;
      std::vector<char> bytes;
      encode_reject(bytes, make_reject(reply.request_id, job_id,
                                       Outcome::kRejectedClosed));
      queue_frame(loop, *it->second, bytes);
    }
  }
}

void AdmissionServer::handle_http(EventLoop& loop, Connection& conn) {
  const std::size_t line_end = conn.http_request.find("\r\n");
  const std::string request_line = conn.http_request.substr(0, line_end);
  std::string body;
  std::string status = "200 OK";
  if (request_line.compare(0, 13, "GET /metrics ") == 0 ||
      request_line.compare(0, 6, "GET / ") == 0) {
    body = render_prometheus(collect_exporter_input(*gateway_));
    // The reaper and accept counters live in the server, not the gateway,
    // so they are appended after the gateway-derived exposition.
    body +=
        "# HELP slacksched_connections_reaped_total Connections closed by "
        "the idle reaper.\n"
        "# TYPE slacksched_connections_reaped_total counter\n"
        "slacksched_connections_reaped_total " +
        std::to_string(connections_reaped()) +
        "\n"
        "# HELP slacksched_accept_errors_total accept4 failures (resource "
        "exhaustion triggers listener backoff).\n"
        "# TYPE slacksched_accept_errors_total counter\n"
        "slacksched_accept_errors_total " +
        std::to_string(accept_errors()) + "\n";
  } else {
    status = "404 Not Found";
    body = "only GET /metrics is served here\n";
  }
  std::string response = "HTTP/1.0 " + status +
                         "\r\nContent-Type: text/plain; version=0.0.4"
                         "\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nConnection: close\r\n\r\n" +
                         body;
  conn.close_after_flush = true;
  queue_bytes(loop, conn, response.data(), response.size());
}

void AdmissionServer::send_protocol_error(EventLoop& loop, Connection& conn,
                                          const std::string& message) {
  std::vector<char> bytes;
  encode_error(bytes, message);
  conn.close_after_flush = true;
  queue_frame(loop, conn, bytes);
}

void AdmissionServer::queue_bytes(EventLoop& loop, Connection& conn,
                                  const char* data, std::size_t n) {
  if (conn.dead) return;
  // Output owed to the peer is activity too: a client quietly waiting for
  // a slow decision is not idle once the reply is on its way.
  conn.last_activity = std::chrono::steady_clock::now();
  // Compact the flushed prefix when it dominates the buffer.
  if (conn.write_pos > 0 && (conn.write_pos == conn.write_buffer.size() ||
                             conn.write_pos >= 65536)) {
    conn.write_buffer.erase(
        conn.write_buffer.begin(),
        conn.write_buffer.begin() +
            static_cast<std::ptrdiff_t>(conn.write_pos));
    conn.write_pos = 0;
  }
  conn.write_buffer.insert(conn.write_buffer.end(), data, data + n);
  flush(conn);
  if (!conn.dead) update_epoll(loop, conn);
}

void AdmissionServer::flush(Connection& conn) {
  while (conn.write_pos < conn.write_buffer.size()) {
    const ssize_t n =
        ::send(conn.fd, conn.write_buffer.data() + conn.write_pos,
               conn.write_buffer.size() - conn.write_pos, MSG_NOSIGNAL);
    if (n > 0) {
      conn.write_pos += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn.dead = true;  // peer reset; the loop closes at a safe point
    return;
  }
}

void AdmissionServer::update_epoll(EventLoop& loop, Connection& conn) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  if (conn.write_pos < conn.write_buffer.size()) ev.events |= EPOLLOUT;
  ev.data.u64 = conn.id;
  (void)::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void AdmissionServer::close_connection(EventLoop& loop,
                                       std::uint64_t conn_id) {
  auto it = loop.connections.find(conn_id);
  if (it == loop.connections.end()) return;
  const int fd = it->second->fd;
  (void)::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  loop.connections.erase(it);
  {
    std::lock_guard lock(loop.pending_mutex);
    loop.owed.erase(conn_id);
  }
  // Pending replies owed to this connection stay registered; their
  // decisions are dropped at outbox drain when the lookup fails.
}

void AdmissionServer::reap_idle(EventLoop& loop,
                                std::chrono::steady_clock::time_point now) {
  std::vector<std::uint64_t> expired;
  {
    // The owed map decides exemption: a connection awaiting a DECISION
    // (slow shard, δ-deferred resolution) is never reaped, however long
    // the wire stays silent — one-answer-per-SUBMIT outranks idleness.
    // Every owed transition happens on this (the loop) thread: increments
    // in handle_submit, decrements at outbox drain / sync-shed reclaim /
    // close. A connection judged reapable here can therefore neither
    // become owed before the close below, nor look un-owed while a shard
    // callback's DECISION is still staged in the outbox.
    std::lock_guard lock(loop.pending_mutex);
    for (const auto& [id, conn] : loop.connections) {
      if (now - conn->last_activity < config_.idle_timeout) continue;
      auto owed_it = loop.owed.find(id);
      if (owed_it != loop.owed.end() && owed_it->second > 0) continue;
      expired.push_back(id);
    }
  }
  for (const std::uint64_t id : expired) {
    close_connection(loop, id);
    connections_reaped_.fetch_add(1, std::memory_order_relaxed);
  }
}

void AdmissionServer::drain_outbox(EventLoop& loop) {
  loop.staged.clear();
  {
    // Swap, don't copy: the arena and entry list ping-pong between the
    // producer side and this drain, keeping their high-water capacity.
    std::lock_guard lock(loop.outbox_mutex);
    loop.staged.bytes.swap(loop.outbox.bytes);
    loop.staged.entries.swap(loop.outbox.entries);
  }
  const std::vector<Outbox::Entry>& entries = loop.staged.entries;
  std::size_t i = 0;
  while (i < entries.size()) {
    // Each connection's consecutive run of decisions flushes as one
    // vectored write.
    const std::uint64_t conn_id = entries[i].conn_id;
    std::size_t j = i + 1;
    while (j < entries.size() && entries[j].conn_id == conn_id) ++j;
    auto it = loop.connections.find(conn_id);
    if (it != loop.connections.end()) {
      Connection& conn = *it->second;
      deliver_staged(loop, conn, i, j);
      if (conn.dead) close_connection(loop, conn_id);
    }
    // else: client left; answers dropped
    {
      // The owed count drops only here, on the loop thread, once the run
      // is handed to the socket (or dropped with its connection). The
      // shard callback that staged these entries left the count intact,
      // so a reap tick between the callback and this drain still sees
      // the connection as owed and spares it. close_connection erased
      // the entry for a departed client, so the find is a no-op there.
      std::lock_guard lock(loop.pending_mutex);
      auto owed_it = loop.owed.find(conn_id);
      if (owed_it != loop.owed.end()) {
        owed_it->second -= std::min<std::uint32_t>(
            owed_it->second, static_cast<std::uint32_t>(j - i));
        if (owed_it->second == 0) loop.owed.erase(owed_it);
      }
    }
    i = j;
  }
}

void AdmissionServer::deliver_staged(EventLoop& loop, Connection& conn,
                                     std::size_t first, std::size_t last) {
  if (conn.dead) return;
  conn.last_activity = std::chrono::steady_clock::now();
  const Outbox& staged = loop.staged;
  if (conn.write_pos < conn.write_buffer.size()) {
    // Output already queued: append behind it (EPOLLOUT is armed; order
    // must hold) and try one flush.
    for (std::size_t k = first; k < last; ++k) {
      const char* src = staged.bytes.data() + staged.entries[k].offset;
      conn.write_buffer.insert(conn.write_buffer.end(), src,
                               src + staged.entries[k].length);
    }
    flush(conn);
    if (!conn.dead) update_epoll(loop, conn);
    return;
  }
  conn.write_buffer.clear();
  conn.write_pos = 0;
  // Fast path: vectored write straight from the staging arena — no copy
  // into the connection buffer unless the socket pushes back. sendmsg is
  // writev with MSG_NOSIGNAL (a reset peer must not SIGPIPE the server).
  constexpr std::size_t kIovBatch = 64;
  iovec iov[kIovBatch];
  std::size_t k = first;
  while (k < last) {
    std::size_t cnt = 0;
    std::size_t chunk_end = k;
    while (chunk_end < last && cnt < kIovBatch) {
      iov[cnt].iov_base = const_cast<char*>(staged.bytes.data() +
                                            staged.entries[chunk_end].offset);
      iov[cnt].iov_len = staged.entries[chunk_end].length;
      ++cnt;
      ++chunk_end;
    }
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = cnt;
    const ssize_t n = ::sendmsg(conn.fd, &mh, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        conn.dead = true;  // peer reset; caller closes at a safe point
        return;
      }
    }
    // Walk the sent bytes off the chunk; any remainder (short write or
    // EAGAIN) spills into the connection buffer and waits for EPOLLOUT.
    auto sent = static_cast<std::size_t>(n < 0 ? 0 : n);
    while (k < chunk_end && sent >= staged.entries[k].length) {
      sent -= staged.entries[k].length;
      ++k;
    }
    if (k == last) return;  // everything written, nothing buffered
    if (k == chunk_end && sent == 0) continue;  // full chunk; next chunk
    for (std::size_t r = k; r < last; ++r) {
      const char* src = staged.bytes.data() + staged.entries[r].offset;
      std::size_t len = staged.entries[r].length;
      if (r == k) {
        src += sent;
        len -= sent;
      }
      conn.write_buffer.insert(conn.write_buffer.end(), src, src + len);
    }
    update_epoll(loop, conn);
    return;
  }
}

}  // namespace slacksched::net
