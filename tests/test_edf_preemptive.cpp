#include "baselines/edf_preemptive.hpp"

#include <gtest/gtest.h>

#include "common/expects.hpp"
#include "workload/generators.hpp"

namespace slacksched {
namespace {

Job make_job(JobId id, TimePoint r, Duration p, TimePoint d) {
  Job j;
  j.id = id;
  j.release = r;
  j.proc = p;
  j.deadline = d;
  return j;
}

TEST(EdfPreemptive, AcceptsSingleJob) {
  const Instance inst({make_job(1, 0.0, 2.0, 3.0)});
  const auto result = run_edf_preemptive(inst, 1);
  EXPECT_EQ(result.metrics.accepted, 1u);
  ASSERT_EQ(result.completions.size(), 1u);
  EXPECT_DOUBLE_EQ(result.completions[0].completion, 2.0);
  EXPECT_TRUE(result.all_on_time());
}

TEST(EdfPreemptive, PreemptionAdmitsWhatNonPreemptionCannot) {
  // A long loose job followed by an urgent short one: non-preemptive
  // immediate commitment must reject the short job once the long one has
  // started, but preemptive EDF fits both.
  const Instance inst({make_job(1, 0.0, 10.0, 20.0),
                       make_job(2, 1.0, 2.0, 4.0)});
  const auto result = run_edf_preemptive(inst, 1);
  EXPECT_EQ(result.metrics.accepted, 2u);
  EXPECT_TRUE(result.all_on_time());
}

TEST(EdfPreemptive, RejectsInfeasibleAddition) {
  const Instance inst({make_job(1, 0.0, 4.0, 4.5),
                       make_job(2, 0.0, 4.0, 4.5)});
  const auto result = run_edf_preemptive(inst, 1);
  EXPECT_EQ(result.metrics.accepted, 1u);
  EXPECT_EQ(result.metrics.rejected, 1u);
  EXPECT_TRUE(result.all_on_time());
}

TEST(EdfPreemptive, NoMigrationAcrossMachines) {
  // Two machines, three jobs each of length 2 with deadline 2.5: only two
  // can run (one per machine); migration could not help and is not used.
  const Instance inst({make_job(1, 0.0, 2.0, 2.5), make_job(2, 0.0, 2.0, 2.5),
                       make_job(3, 0.0, 2.0, 2.5)});
  const auto result = run_edf_preemptive(inst, 2);
  EXPECT_EQ(result.metrics.accepted, 2u);
  EXPECT_TRUE(result.all_on_time());
}

TEST(EdfPreemptive, PoliciesDiffer) {
  // most-loaded stacks, least-loaded balances; both must stay feasible.
  WorkloadConfig config;
  config.n = 300;
  config.eps = 0.2;
  config.arrival_rate = 3.0;
  config.seed = 555;
  const Instance inst = generate_workload(config);
  for (PreemptivePolicy policy :
       {PreemptivePolicy::kFirstFeasible, PreemptivePolicy::kMostLoaded,
        PreemptivePolicy::kLeastLoaded}) {
    const auto result = run_edf_preemptive(inst, 3, policy);
    EXPECT_TRUE(result.all_on_time()) << to_string(policy);
    EXPECT_EQ(result.metrics.accepted + result.metrics.rejected,
              result.metrics.submitted);
    EXPECT_EQ(result.completions.size(), result.metrics.accepted);
  }
}

TEST(EdfPreemptive, CompletionsMatchAcceptedJobs) {
  WorkloadConfig config;
  config.n = 200;
  config.eps = 0.05;
  config.arrival_rate = 4.0;
  config.seed = 99;
  const Instance inst = generate_workload(config);
  const auto result = run_edf_preemptive(inst, 2);
  EXPECT_EQ(result.completions.size(), result.metrics.accepted);
  EXPECT_GT(result.metrics.accepted, 0u);
  double completed_deadline_margin = 0.0;
  for (const auto& c : result.completions) {
    completed_deadline_margin += c.deadline - c.completion;
    EXPECT_GE(c.machine, 0);
    EXPECT_LT(c.machine, 2);
  }
  EXPECT_GE(completed_deadline_margin, 0.0);
}

TEST(EdfPreemptive, PolicyNames) {
  EXPECT_EQ(to_string(PreemptivePolicy::kFirstFeasible), "first-feasible");
  EXPECT_EQ(to_string(PreemptivePolicy::kMostLoaded), "most-loaded");
  EXPECT_EQ(to_string(PreemptivePolicy::kLeastLoaded), "least-loaded");
}

TEST(EdfPreemptive, RejectsBadMachineCount) {
  EXPECT_THROW((void)run_edf_preemptive(Instance{}, 0), PreconditionError);
}

/// Property: every admitted job completes by its deadline, across sweeps.
class EdfSweep
    : public ::testing::TestWithParam<std::tuple<double, int, std::uint64_t>> {
};

TEST_P(EdfSweep, AdmittedJobsAlwaysCompleteOnTime) {
  const auto [eps, m, seed] = GetParam();
  WorkloadConfig config;
  config.n = 400;
  config.eps = eps;
  config.arrival_rate = 2.0 * m;
  config.slack = SlackModel::kTight;
  config.seed = seed;
  const Instance inst = generate_workload(config);
  const auto result = run_edf_preemptive(inst, m);
  EXPECT_TRUE(result.all_on_time());
  EXPECT_EQ(result.completions.size(), result.metrics.accepted);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EdfSweep,
                         ::testing::Combine(::testing::Values(0.02, 0.3),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(7, 1234)));

}  // namespace
}  // namespace slacksched
