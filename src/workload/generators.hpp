// Synthetic workload generation.
//
// The paper evaluates through competitive analysis only; these generators
// provide the synthetic job streams for the empirical extension benches and
// the property-test sweeps. Every generated instance satisfies the slack
// condition (3) for the configured eps by construction.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/rng.hpp"
#include "job/instance.hpp"
#include "policy/criticality.hpp"

namespace slacksched {

/// Arrival process of the job stream.
enum class ArrivalModel {
  kPoisson,    ///< exponential inter-arrival times with the given rate
  kUniform,    ///< i.i.d. uniform releases over [0, horizon]
  kBursty,     ///< Poisson background plus periodic synchronized bursts
  kAllAtOnce,  ///< every job released at time 0 (the batch special case)
  kDiurnal,    ///< non-homogeneous Poisson with sinusoidal (day/night) rate
};

/// Processing-time distribution.
enum class SizeModel {
  kUniform,        ///< uniform on [size_min, size_max]
  kBoundedPareto,  ///< heavy-tailed bounded Pareto on [size_min, size_max]
  kBimodal,        ///< short jobs (size_min) or long jobs (size_max)
  kConstant,       ///< every job has size size_min
};

/// How deadlines are drawn relative to the slack guarantee.
enum class SlackModel {
  kTight,          ///< d = r + (1 + eps) p for every job
  kUniformFactor,  ///< d = r + (1 + X) p, X uniform on [eps, slack_hi]
  kMixed,          ///< half tight, half uniform (urgent vs. relaxed tiers)
};

[[nodiscard]] std::string to_string(ArrivalModel model);
[[nodiscard]] std::string to_string(SizeModel model);
[[nodiscard]] std::string to_string(SlackModel model);

/// Full description of a synthetic workload.
struct WorkloadConfig {
  std::size_t n = 1000;
  double eps = 0.1;  ///< guaranteed minimum slack

  ArrivalModel arrival = ArrivalModel::kPoisson;
  double arrival_rate = 1.0;   ///< jobs per unit time (Poisson / bursty)
  double horizon = 1000.0;     ///< release span for kUniform
  double burst_every = 100.0;  ///< burst period (kBursty)
  std::size_t burst_size = 20; ///< jobs per burst (kBursty)
  double diurnal_period = 200.0;    ///< one "day" (kDiurnal)
  double diurnal_amplitude = 0.8;   ///< rate swing in [0, 1) (kDiurnal)

  SizeModel size = SizeModel::kBoundedPareto;
  double size_min = 1.0;
  double size_max = 100.0;
  double pareto_alpha = 1.5;
  double bimodal_long_fraction = 0.1;

  SlackModel slack = SlackModel::kUniformFactor;
  double slack_hi = 1.0;  ///< upper slack factor for kUniformFactor/kMixed

  /// Criticality class mix: relative weight of each class in the stream
  /// (normalized internally; absolute scale is irrelevant). The default
  /// puts every job in the lowest class AND — deliberately — skips the
  /// class draw entirely, so legacy configs consume the exact same random
  /// stream as before the field existed: bit-identical instances.
  std::array<double, kCriticalityCount> class_mix{1.0, 0.0, 0.0, 0.0};

  std::uint64_t seed = 1;

  /// Checks every knob against the model it parameterizes. Returns one
  /// human-readable message per problem; empty means valid.
  /// generate_workload throws a PreconditionError listing every message.
  [[nodiscard]] std::vector<std::string> validate() const;

  [[nodiscard]] std::string to_string() const;
};

/// Generates the instance described by `config`. Deterministic in the
/// seed. Throws PreconditionError listing every validate() problem.
[[nodiscard]] Instance generate_workload(const WorkloadConfig& config);

/// Named-scenario registry. Looks up a base configuration by name and
/// parameterizes it with the slack guarantee and seed; throws
/// PreconditionError (naming the known scenarios) for an unknown name.
///
///   "cloud-burst"        heavy-tailed batch mix + periodic interactive
///                        bursts (the paper's IaaS motivation)
///   "overload"           near-overload tight-slack stream, the regime
///                        where admission control decides everything
///   "diurnal"            day/night sinusoidal rate with a bimodal
///                        (interactive vs. batch) size mix
///   "mixed-criticality"  the overload regime with all four criticality
///                        classes present — the class-aware shed and
///                        elastic-capacity evaluation stream
[[nodiscard]] WorkloadConfig scenario(std::string_view name, double eps,
                                      std::uint64_t seed);

/// Every name scenario() accepts, in registry order.
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace slacksched
