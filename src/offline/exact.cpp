#include "offline/exact.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "common/expects.hpp"

namespace slacksched {

namespace {

/// Dispatch-order feasibility search with a visited-state memo.
class FeasibilitySearch {
 public:
  FeasibilitySearch(std::vector<Job> jobs, int machines)
      : jobs_(std::move(jobs)), machines_(machines) {
    // Earliest-deadline-first job order finds feasible dispatches quickly.
    std::sort(jobs_.begin(), jobs_.end(), [](const Job& a, const Job& b) {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a.id < b.id;
    });
  }

  bool run() {
    if (jobs_.empty()) return true;
    std::vector<TimePoint> frontiers(static_cast<std::size_t>(machines_),
                                     0.0);
    return dfs(0, frontiers);
  }

  [[nodiscard]] std::size_t states_visited() const { return states_; }

 private:
  static std::uint64_t hash_state(std::uint32_t mask,
                                  const std::vector<TimePoint>& frontiers) {
    std::uint64_t h = 0xcbf29ce484222325ULL ^ mask;
    for (TimePoint f : frontiers) {
      // Quantize so states equal up to tolerance hash identically.
      const auto q = static_cast<std::int64_t>(std::llround(f / kTimeEps));
      h ^= static_cast<std::uint64_t>(q) + 0x9e3779b97f4a7c15ULL +
           (h << 6) + (h >> 2);
    }
    return h;
  }

  bool dfs(std::uint32_t mask, std::vector<TimePoint>& frontiers) {
    if (mask == (std::uint32_t{1} << jobs_.size()) - 1) return true;
    ++states_;

    std::vector<TimePoint> canonical = frontiers;
    std::sort(canonical.begin(), canonical.end());
    const std::uint64_t key = hash_state(mask, canonical);
    if (failed_.count(key) != 0) return false;

    // Dead-job prune: every remaining job must still fit after the least
    // loaded machine, otherwise no dispatch order can save it.
    const TimePoint min_frontier = canonical.front();
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (mask & (std::uint32_t{1} << j)) continue;
      const TimePoint earliest = std::max(min_frontier, jobs_[j].release);
      if (definitely_greater(earliest + jobs_[j].proc, jobs_[j].deadline)) {
        failed_.insert(key);
        return false;
      }
    }

    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      if (mask & (std::uint32_t{1} << j)) continue;
      // Try each distinct frontier value once (machines are identical).
      for (int i = 0; i < machines_; ++i) {
        bool duplicate = false;
        for (int prev = 0; prev < i; ++prev) {
          if (approx_eq(frontiers[static_cast<std::size_t>(prev)],
                        frontiers[static_cast<std::size_t>(i)])) {
            duplicate = true;
            break;
          }
        }
        if (duplicate) continue;

        const TimePoint start =
            std::max(frontiers[static_cast<std::size_t>(i)],
                     jobs_[j].release);
        if (definitely_greater(start + jobs_[j].proc, jobs_[j].deadline)) {
          continue;
        }
        const TimePoint saved = frontiers[static_cast<std::size_t>(i)];
        frontiers[static_cast<std::size_t>(i)] = start + jobs_[j].proc;
        if (dfs(mask | (std::uint32_t{1} << j), frontiers)) return true;
        frontiers[static_cast<std::size_t>(i)] = saved;
      }
    }
    failed_.insert(key);
    return false;
  }

  std::vector<Job> jobs_;
  int machines_;
  std::unordered_set<std::uint64_t> failed_;
  std::size_t states_ = 0;
};

}  // namespace

bool exact_feasible(const std::vector<Job>& jobs, int machines) {
  SLACKSCHED_EXPECTS(machines >= 1);
  SLACKSCHED_EXPECTS(jobs.size() <= kExactSolverMaxJobs);
  return FeasibilitySearch(jobs, machines).run();
}

namespace {

/// Branch-and-bound over inclusion/exclusion of volume-sorted jobs.
class SubsetSearch {
 public:
  SubsetSearch(std::vector<Job> jobs, int machines)
      : jobs_(std::move(jobs)), machines_(machines) {
    std::sort(jobs_.begin(), jobs_.end(), [](const Job& a, const Job& b) {
      if (a.proc != b.proc) return a.proc > b.proc;
      return a.id < b.id;
    });
    suffix_volume_.assign(jobs_.size() + 1, 0.0);
    for (std::size_t i = jobs_.size(); i-- > 0;) {
      suffix_volume_[i] = suffix_volume_[i + 1] + jobs_[i].proc;
    }
  }

  ExactResult run(double seed_value, std::vector<JobId> seed_set) {
    best_value_ = seed_value;
    best_set_ = std::move(seed_set);
    std::vector<Job> chosen;
    branch(0, 0.0, chosen);
    ExactResult result;
    result.value = best_value_;
    result.accepted = best_set_;
    result.feasibility_checks = checks_;
    return result;
  }

 private:
  void branch(std::size_t index, double volume, std::vector<Job>& chosen) {
    if (volume + suffix_volume_[index] <= best_value_ + kTimeEps) return;
    if (index == jobs_.size()) {
      if (volume > best_value_ + kTimeEps) {
        best_value_ = volume;
        best_set_.clear();
        for (const Job& j : chosen) best_set_.push_back(j.id);
      }
      return;
    }

    // Include branch first: with volume-sorted jobs this reaches large
    // solutions early and tightens the bound.
    chosen.push_back(jobs_[index]);
    ++checks_;
    if (exact_feasible(chosen, machines_)) {
      branch(index + 1, volume + jobs_[index].proc, chosen);
    }
    chosen.pop_back();

    branch(index + 1, volume, chosen);
  }

  std::vector<Job> jobs_;
  int machines_;
  std::vector<double> suffix_volume_;
  double best_value_ = 0.0;
  std::vector<JobId> best_set_;
  std::size_t checks_ = 0;
};

/// Greedy accept-if-feasible seed to start the bound high.
std::pair<double, std::vector<JobId>> greedy_seed(const Instance& instance,
                                                  int machines) {
  std::vector<TimePoint> frontier(static_cast<std::size_t>(machines), 0.0);
  double volume = 0.0;
  std::vector<JobId> accepted;
  for (const Job& job : instance.jobs()) {
    int best = -1;
    Duration best_load = -1.0;
    for (int i = 0; i < machines; ++i) {
      const Duration load =
          std::max(0.0, frontier[static_cast<std::size_t>(i)] - job.release);
      if (!approx_le(job.release + load + job.proc, job.deadline)) continue;
      if (load > best_load) {
        best_load = load;
        best = i;
      }
    }
    if (best >= 0) {
      frontier[static_cast<std::size_t>(best)] =
          job.release + best_load + job.proc;
      volume += job.proc;
      accepted.push_back(job.id);
    }
  }
  return {volume, std::move(accepted)};
}

}  // namespace

ExactResult exact_optimal_load(const Instance& instance, int machines) {
  SLACKSCHED_EXPECTS(machines >= 1);
  SLACKSCHED_EXPECTS(instance.size() <= kExactSolverMaxJobs);
  auto [seed_value, seed_set] = greedy_seed(instance, machines);
  return SubsetSearch(instance.jobs(), machines)
      .run(seed_value, std::move(seed_set));
}

}  // namespace slacksched
