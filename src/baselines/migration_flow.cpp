#include "baselines/migration_flow.hpp"

#include <algorithm>
#include <limits>

#include "common/expects.hpp"
#include "offline/feasibility.hpp"
#include "offline/maxflow.hpp"

namespace slacksched {

bool MigrationResult::all_on_time() const {
  return std::all_of(completions.begin(), completions.end(),
                     [](const MigrationCompletion& c) {
                       return approx_le(c.completion, c.deadline);
                     });
}

namespace {

/// Executes the fluid schedule from `now` to `until`: solves the flow
/// witness over the fragments' deadline grid and drains each fragment by
/// its flow into the intervals before `until`. Completions (remaining
/// hitting zero) are recorded at the end of the draining interval.
void fluid_execute(std::vector<RemainingJob>& fragments, int machines,
                   TimePoint now, TimePoint until,
                   std::vector<MigrationCompletion>& completions,
                   TimePoint& makespan) {
  if (fragments.empty() || until <= now + kTimeEps) return;

  // Event grid: now, until, and every fragment deadline in (now, until];
  // intervals past `until` are also modelled so the witness proves the
  // remainder feasible.
  std::vector<TimePoint> events{now, until};
  for (const RemainingJob& f : fragments) {
    if (f.deadline > now + kTimeEps) events.push_back(f.deadline);
  }
  std::sort(events.begin(), events.end());
  events.erase(
      std::unique(events.begin(), events.end(),
                  [](TimePoint a, TimePoint b) { return approx_eq(a, b); }),
      events.end());

  const std::size_t n = fragments.size();
  const std::size_t intervals = events.size() - 1;
  const std::size_t source = 0;
  const std::size_t sink = 1 + n + intervals;
  MaxFlow flow(sink + 1);

  // Edge handles for job -> interval edges, to read the witness back.
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> handles(n);
  for (std::size_t i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, fragments[i].remaining);
  }
  for (std::size_t v = 0; v < intervals; ++v) {
    const Duration length = events[v + 1] - events[v];
    flow.add_edge(1 + n + v, sink, machines * length);
    for (std::size_t i = 0; i < n; ++i) {
      if (approx_le(events[v + 1], fragments[i].deadline)) {
        handles[i].emplace_back(v, flow.add_edge(1 + i, 1 + n + v, length));
      }
    }
  }
  const double routed = flow.max_flow(source, sink);
  double demand = 0.0;
  for (const RemainingJob& f : fragments) demand += f.remaining;
  // The admitted set is feasible by the admission invariant.
  SLACKSCHED_ENSURES(routed >= demand - 1e-6 * (1.0 + demand));

  // Drain each fragment by its execution before `until`.
  for (std::size_t i = 0; i < n; ++i) {
    double executed = 0.0;
    TimePoint last_active = now;
    for (const auto& [interval, handle] : handles[i]) {
      if (events[interval + 1] > until + kTimeEps) continue;
      const double amount = flow.flow_on(handle);
      if (amount > kFlowEps) {
        executed += amount;
        last_active = std::max(last_active, events[interval + 1]);
      }
    }
    fragments[i].remaining = std::max(0.0, fragments[i].remaining - executed);
    if (fragments[i].remaining <= 1e-7) {
      completions.push_back(
          {fragments[i].id, last_active, fragments[i].deadline});
      makespan = std::max(makespan, last_active);
      fragments[i].remaining = -1.0;  // mark for removal
    }
  }
  std::erase_if(fragments,
                [](const RemainingJob& f) { return f.remaining < 0.0; });
}

}  // namespace

MigrationResult run_migration_admission(const Instance& instance,
                                        int machines) {
  SLACKSCHED_EXPECTS(machines >= 1);
  MigrationResult result;
  result.metrics.submitted = instance.size();

  std::vector<RemainingJob> fragments;
  TimePoint now = 0.0;
  TimePoint makespan = 0.0;

  for (const Job& job : instance.jobs()) {
    fluid_execute(fragments, machines, now, job.release, result.completions,
                  makespan);
    now = std::max(now, job.release);

    std::vector<RemainingJob> trial = fragments;
    trial.push_back({job.id, job.proc, job.deadline});
    if (preemptive_migration_feasible(trial, machines, now)) {
      fragments = std::move(trial);
      ++result.metrics.accepted;
      result.metrics.accepted_volume += job.proc;
    } else {
      ++result.metrics.rejected;
      result.metrics.rejected_volume += job.proc;
    }
  }

  // Drain everything that remains.
  TimePoint horizon = now;
  for (const RemainingJob& f : fragments) {
    horizon = std::max(horizon, f.deadline);
  }
  fluid_execute(fragments, machines, now, horizon + 1.0, result.completions,
                makespan);
  SLACKSCHED_ENSURES(fragments.empty());

  result.metrics.makespan = makespan;
  return result;
}

}  // namespace slacksched
