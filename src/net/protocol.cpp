#include "net/protocol.hpp"

#include <bit>
#include <cstring>
#include <type_traits>

#include "common/wire.hpp"

namespace slacksched::net {

namespace {

using wire::crc32_ieee;
using wire::get;
using wire::patch;
using wire::put;

/// Per-job body inside SUBMIT and SUBMIT_BATCH frames.
constexpr std::size_t kJobBytes = 32;  // i64 id + 3 x f64

/// True when an in-memory Job is byte-for-byte the wire job: little-endian
/// host, no padding, fields at the wire offsets. Then a SUBMIT_BATCH job
/// array decodes with one memcpy instead of four field reads per job.
constexpr bool kJobMatchesWire =
    std::endian::native == std::endian::little && sizeof(Job) == kJobBytes &&
    std::is_trivially_copyable_v<Job> && offsetof(Job, id) == 0 &&
    offsetof(Job, release) == 8 && offsetof(Job, proc) == 16 &&
    offsetof(Job, deadline) == 24;

/// Opens a frame: writes the header with payload_len/crc zeroed and
/// returns the offset where the payload begins.
std::size_t begin_frame(std::vector<char>& out, FrameType type) {
  put<std::uint8_t>(out, kProtocolVersion);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(type));
  put<std::uint16_t>(out, 0);  // reserved
  put<std::uint32_t>(out, 0);  // payload_len, patched by end_frame
  put<std::uint32_t>(out, 0);  // crc, patched by end_frame
  return out.size();
}

/// Closes the frame opened at `payload_start`: patches length and CRC.
void end_frame(std::vector<char>& out, std::size_t payload_start) {
  const std::size_t len = out.size() - payload_start;
  patch<std::uint32_t>(out, payload_start - 8,
                       static_cast<std::uint32_t>(len));
  patch<std::uint32_t>(out, payload_start - 4,
                       crc32_ieee(out.data() + payload_start, len));
}

void put_job(std::vector<char>& out, const Job& job) {
  put<std::int64_t>(out, job.id);
  put<double>(out, job.release);
  put<double>(out, job.proc);
  put<double>(out, job.deadline);
}

Job get_job(const char** cursor) {
  Job job;
  job.id = get<std::int64_t>(cursor);
  job.release = get<double>(cursor);
  job.proc = get<double>(cursor);
  job.deadline = get<double>(cursor);
  return job;
}

/// Validates a fixed-size payload: at least `need` bytes (longer is legal
/// — a newer peer may have appended fields we do not read).
bool check_size(const Frame& frame, std::size_t need, const char* what,
                std::string* error) {
  if (frame.payload.size() >= need) return true;
  if (error != nullptr) {
    *error = std::string(what) + " payload too short: " +
             std::to_string(frame.payload.size()) + " < " +
             std::to_string(need) + " bytes";
  }
  return false;
}

}  // namespace

void encode_submit(std::vector<char>& out, const SubmitMsg& msg) {
  const std::size_t start = begin_frame(out, FrameType::kSubmit);
  put<std::uint64_t>(out, msg.request_id);
  put_job(out, msg.job);
  end_frame(out, start);
}

void encode_submit_batch(std::vector<char>& out,
                         std::uint64_t base_request_id,
                         std::span<const Job> jobs) {
  const std::size_t start = begin_frame(out, FrameType::kSubmitBatch);
  put<std::uint64_t>(out, base_request_id);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(jobs.size()));
  for (const Job& job : jobs) put_job(out, job);
  end_frame(out, start);
}

void encode_decision(std::vector<char>& out, const DecisionMsg& msg) {
  const std::size_t start = begin_frame(out, FrameType::kDecision);
  put<std::uint64_t>(out, msg.request_id);
  put<std::int64_t>(out, msg.job_id);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(msg.outcome));
  put<std::int32_t>(out, msg.machine);
  put<double>(out, msg.start);
  end_frame(out, start);
}

void encode_reject(std::vector<char>& out, const RejectMsg& msg) {
  const std::size_t start = begin_frame(out, FrameType::kReject);
  put<std::uint64_t>(out, msg.request_id);
  put<std::int64_t>(out, msg.job_id);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(msg.outcome));
  put<std::uint32_t>(out, msg.retry_after_ms);
  end_frame(out, start);
}

void encode_drain(std::vector<char>& out) {
  const std::size_t start = begin_frame(out, FrameType::kDrain);
  end_frame(out, start);
}

void encode_drained(std::vector<char>& out, const DrainedMsg& msg) {
  const std::size_t start = begin_frame(out, FrameType::kDrained);
  put<std::uint64_t>(out, msg.submitted);
  put<std::uint64_t>(out, msg.accepted);
  put<std::uint64_t>(out, msg.rejected);
  put<double>(out, msg.accepted_volume);
  put<double>(out, msg.rejected_volume);
  put<double>(out, msg.makespan);
  put<std::uint8_t>(out, msg.clean);
  end_frame(out, start);
}

void encode_ping(std::vector<char>& out, std::uint64_t token) {
  const std::size_t start = begin_frame(out, FrameType::kPing);
  put<std::uint64_t>(out, token);
  end_frame(out, start);
}

void encode_pong(std::vector<char>& out, std::uint64_t token) {
  const std::size_t start = begin_frame(out, FrameType::kPong);
  put<std::uint64_t>(out, token);
  end_frame(out, start);
}

void encode_error(std::vector<char>& out, std::string_view message) {
  const std::size_t start = begin_frame(out, FrameType::kError);
  out.insert(out.end(), message.begin(), message.end());
  end_frame(out, start);
}

bool parse_submit(const Frame& frame, SubmitMsg& out, std::string* error) {
  if (!check_size(frame, 8 + kJobBytes, "SUBMIT", error)) return false;
  const char* cursor = frame.payload.data();
  out.request_id = get<std::uint64_t>(&cursor);
  out.job = get_job(&cursor);
  return true;
}

bool parse_submit_batch(const Frame& frame, std::uint64_t& base_request_id,
                        std::vector<Job>& jobs, std::string* error) {
  return parse_submit_batch_into(frame, base_request_id, jobs, error);
}

bool parse_submit_batch_into(const Frame& frame,
                             std::uint64_t& base_request_id,
                             std::vector<Job>& jobs, std::string* error) {
  if (!check_size(frame, 12, "SUBMIT_BATCH", error)) return false;
  const char* cursor = frame.payload.data();
  base_request_id = get<std::uint64_t>(&cursor);
  const std::uint32_t count = get<std::uint32_t>(&cursor);
  const std::size_t need = 12 + static_cast<std::size_t>(count) * kJobBytes;
  if (frame.payload.size() < need) {
    if (error != nullptr) {
      *error = "SUBMIT_BATCH count " + std::to_string(count) +
               " exceeds payload (" + std::to_string(frame.payload.size()) +
               " bytes)";
    }
    return false;
  }
  jobs.resize(count);
  if constexpr (kJobMatchesWire) {
    if (count > 0) {
      std::memcpy(jobs.data(), cursor,
                  static_cast<std::size_t>(count) * kJobBytes);
    }
  } else {
    for (std::uint32_t i = 0; i < count; ++i) jobs[i] = get_job(&cursor);
  }
  return true;
}

bool parse_decision(const Frame& frame, DecisionMsg& out,
                    std::string* error) {
  if (!check_size(frame, 29, "DECISION", error)) return false;
  const char* cursor = frame.payload.data();
  out.request_id = get<std::uint64_t>(&cursor);
  out.job_id = get<std::int64_t>(&cursor);
  const std::uint8_t raw = get<std::uint8_t>(&cursor);
  out.machine = get<std::int32_t>(&cursor);
  out.start = get<double>(&cursor);
  if (!outcome_valid(raw) ||
      !outcome_is_decision(static_cast<Outcome>(raw))) {
    if (error != nullptr) {
      *error = "DECISION carries non-decision outcome code " +
               std::to_string(raw);
    }
    return false;
  }
  out.outcome = static_cast<Outcome>(raw);
  return true;
}

bool parse_reject(const Frame& frame, RejectMsg& out, std::string* error) {
  if (!check_size(frame, 21, "REJECT", error)) return false;
  const char* cursor = frame.payload.data();
  out.request_id = get<std::uint64_t>(&cursor);
  out.job_id = get<std::int64_t>(&cursor);
  const std::uint8_t raw = get<std::uint8_t>(&cursor);
  out.retry_after_ms = get<std::uint32_t>(&cursor);
  if (!outcome_valid(raw) || !outcome_is_shed(static_cast<Outcome>(raw))) {
    if (error != nullptr) {
      *error = "REJECT carries non-shed outcome code " + std::to_string(raw);
    }
    return false;
  }
  out.outcome = static_cast<Outcome>(raw);
  return true;
}

bool parse_drained(const Frame& frame, DrainedMsg& out, std::string* error) {
  if (!check_size(frame, 49, "DRAINED", error)) return false;
  const char* cursor = frame.payload.data();
  out.submitted = get<std::uint64_t>(&cursor);
  out.accepted = get<std::uint64_t>(&cursor);
  out.rejected = get<std::uint64_t>(&cursor);
  out.accepted_volume = get<double>(&cursor);
  out.rejected_volume = get<double>(&cursor);
  out.makespan = get<double>(&cursor);
  out.clean = get<std::uint8_t>(&cursor);
  return true;
}

bool parse_token(const Frame& frame, std::uint64_t& token,
                 std::string* error) {
  if (!check_size(frame, 8, "PING/PONG", error)) return false;
  const char* cursor = frame.payload.data();
  token = get<std::uint64_t>(&cursor);
  return true;
}

std::string parse_error_message(const Frame& frame) {
  return std::string(frame.payload.begin(), frame.payload.end());
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  if (!error_.empty()) return;  // sticky: the stream is already lost
  // Compact the consumed prefix before growing; amortized O(1) per byte.
  if (pos_ > 0 && (pos_ == buffer_.size() || pos_ >= 4096)) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

FrameDecoder::Status FrameDecoder::next(Frame& out) {
  if (!error_.empty()) return Status::kError;
  if (buffered() < kFrameHeaderSize) return Status::kNeedMore;
  const char* cursor = buffer_.data() + pos_;
  const std::uint8_t version = get<std::uint8_t>(&cursor);
  const std::uint8_t type = get<std::uint8_t>(&cursor);
  (void)get<std::uint16_t>(&cursor);  // reserved
  const std::uint32_t len = get<std::uint32_t>(&cursor);
  const std::uint32_t crc = get<std::uint32_t>(&cursor);
  if (version != kProtocolVersion) {
    error_ = "unsupported protocol version " + std::to_string(version) +
             " (this build speaks " + std::to_string(kProtocolVersion) + ")";
    return Status::kError;
  }
  if (!frame_type_valid(type)) {
    error_ = "unknown frame type " + std::to_string(type);
    return Status::kError;
  }
  if (len > kMaxPayload) {
    error_ = "payload length " + std::to_string(len) +
             " exceeds the " + std::to_string(kMaxPayload) + "-byte cap";
    return Status::kError;
  }
  if (buffered() < kFrameHeaderSize + len) return Status::kNeedMore;
  if (crc32_ieee(cursor, len) != crc) {
    error_ = "payload checksum mismatch on frame type " +
             std::to_string(type);
    return Status::kError;
  }
  out.type = static_cast<FrameType>(type);
  out.payload.assign(cursor, cursor + len);
  pos_ += kFrameHeaderSize + len;
  return Status::kFrame;
}

}  // namespace slacksched::net
