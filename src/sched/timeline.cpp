#include "sched/timeline.hpp"

#include <algorithm>
#include <limits>

#include "common/expects.hpp"
#include "common/table.hpp"

namespace slacksched {

std::vector<BusySegment> busy_timeline(const Schedule& schedule) {
  // Sweep over start/completion events.
  std::vector<std::pair<TimePoint, int>> events;
  for (const Placement& p : schedule.all_placements()) {
    events.emplace_back(p.start, +1);
    events.emplace_back(p.completion(), -1);
  }
  if (events.empty()) return {};
  std::sort(events.begin(), events.end());

  std::vector<BusySegment> segments;
  int busy = 0;
  TimePoint prev = events.front().first;
  std::size_t i = 0;
  while (i < events.size()) {
    const TimePoint t = events[i].first;
    if (t > prev) {
      if (segments.empty() || segments.back().busy_machines != busy ||
          !approx_eq(segments.back().end, prev)) {
        segments.push_back({prev, t, busy});
      } else {
        segments.back().end = t;
      }
      prev = t;
    }
    while (i < events.size() && approx_eq(events[i].first, t)) {
      busy += events[i].second;
      ++i;
    }
  }
  // Merge adjacent segments with equal counts (can arise from ties).
  std::vector<BusySegment> merged;
  for (const BusySegment& s : segments) {
    if (s.length() <= kTimeEps) continue;
    if (!merged.empty() && merged.back().busy_machines == s.busy_machines &&
        approx_eq(merged.back().end, s.begin)) {
      merged.back().end = s.end;
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

double utilization(const Schedule& schedule, TimePoint horizon) {
  const TimePoint h = horizon > 0.0 ? horizon : schedule.makespan();
  if (h <= 0.0) return 0.0;
  double busy_machine_time = 0.0;
  for (const Placement& p : schedule.all_placements()) {
    const TimePoint begin = std::min(p.start, h);
    const TimePoint end = std::min(p.completion(), h);
    busy_machine_time += std::max(0.0, end - begin);
  }
  return busy_machine_time / (h * schedule.machines());
}

std::vector<CoveredInterval> covered_intervals(const RunResult& result) {
  // Collect rejected windows and merge overlapping ones.
  std::vector<std::pair<TimePoint, TimePoint>> windows;
  for (const DecisionRecord& record : result.decisions) {
    if (!record.decision.accepted) {
      windows.emplace_back(record.job.release, record.job.deadline);
    }
  }
  if (windows.empty()) return {};
  std::sort(windows.begin(), windows.end());

  std::vector<CoveredInterval> intervals;
  for (const auto& [begin, end] : windows) {
    if (!intervals.empty() && begin <= intervals.back().end + kTimeEps) {
      intervals.back().end = std::max(intervals.back().end, end);
    } else {
      CoveredInterval interval;
      interval.begin = begin;
      interval.end = end;
      intervals.push_back(interval);
    }
  }

  // Attribute rejected windows and committed execution to the intervals.
  // The intervals are sorted and disjoint (begins and ends both ascend), so
  // both attributions locate their interval(s) by binary search instead of
  // scanning the whole interval list per record.
  for (const DecisionRecord& record : result.decisions) {
    if (record.decision.accepted) continue;
    // A naive forward scan stops at the first interval containing the
    // window; with ascending ends that is the first interval with
    // deadline <= end + eps, and with ascending begins every earlier
    // interval satisfies the begin condition whenever that one does.
    const auto it = std::partition_point(
        intervals.begin(), intervals.end(), [&](const CoveredInterval& iv) {
          return !(record.job.deadline <= iv.end + kTimeEps);
        });
    if (it != intervals.end() && record.job.release >= it->begin - kTimeEps) {
      ++it->rejected_jobs;
      it->rejected_volume += record.job.proc;
    }
  }
  for (const Placement& p : result.schedule.all_placements()) {
    // Intervals overlapping [start, completion) form a contiguous range:
    // skip those ending at or before the start, stop at the first one
    // beginning at or after the completion.
    const TimePoint completion = p.completion();
    auto it = std::partition_point(
        intervals.begin(), intervals.end(),
        [&](const CoveredInterval& iv) { return !(iv.end > p.start); });
    for (; it != intervals.end() && it->begin < completion; ++it) {
      const TimePoint begin = std::max(p.start, it->begin);
      const TimePoint end = std::min(completion, it->end);
      if (end > begin) it->online_volume += end - begin;
    }
  }
  return intervals;
}

Duration uncovered_time(const RunResult& result, TimePoint horizon) {
  SLACKSCHED_EXPECTS(horizon > 0.0);
  Duration covered = 0.0;
  for (const CoveredInterval& interval : covered_intervals(result)) {
    const TimePoint begin = std::max(0.0, interval.begin);
    const TimePoint end = std::min(horizon, interval.end);
    if (end > begin) covered += end - begin;
  }
  return horizon - covered;
}

CertifiedBound certified_optimum_bound(const RunResult& result,
                                       int machines) {
  SLACKSCHED_EXPECTS(machines >= 1);
  CertifiedBound bound;
  bound.alg_volume = result.metrics.accepted_volume;

  // Any schedule — optimal included — must place each rejected job inside
  // its own [r, d) window, and all such windows lie inside the covered
  // intervals; their total machine-time caps how much extra load an
  // optimum can have found.
  double covered_capacity = 0.0;
  double rejected_volume = 0.0;
  for (const CoveredInterval& interval : covered_intervals(result)) {
    covered_capacity += static_cast<double>(machines) * interval.length();
    rejected_volume += interval.rejected_volume;
  }
  bound.opt_bound =
      bound.alg_volume + std::min(rejected_volume, covered_capacity);
  bound.ratio_bound = bound.alg_volume > 0.0
                          ? bound.opt_bound / bound.alg_volume
                          : std::numeric_limits<double>::infinity();
  return bound;
}

SvgDocument render_timeline_svg(const RunResult& result,
                                const std::string& title) {
  const int machines = result.schedule.machines();
  TimePoint horizon = std::max(1.0, result.schedule.makespan());
  const auto intervals = covered_intervals(result);
  for (const CoveredInterval& interval : intervals) {
    horizon = std::max(horizon, interval.end);
  }

  constexpr double kLeft = 60.0;
  constexpr double kTop = 40.0;
  constexpr double kPlotW = 760.0;
  constexpr double kPlotH = 220.0;
  constexpr double kBandH = 26.0;
  SvgDocument svg(kLeft + kPlotW + 20.0, kTop + kPlotH + kBandH + 60.0);
  if (!title.empty()) svg.text(kLeft, 24.0, title, 14.0);

  const AxisScale x(0.0, horizon, kLeft, kLeft + kPlotW);
  const AxisScale y(0.0, static_cast<double>(machines), kTop + kPlotH, kTop);

  // Frame and machine-count gridlines.
  svg.line(kLeft, kTop + kPlotH, kLeft + kPlotW, kTop + kPlotH);
  svg.line(kLeft, kTop, kLeft, kTop + kPlotH);
  for (int level = 0; level <= machines; ++level) {
    const double py = y(level);
    svg.line(kLeft, py, kLeft + kPlotW, py, "#eeeeee", 1.0, true);
    svg.text(kLeft - 8.0, py + 4.0, std::to_string(level), 10.0, "#111111",
             "end");
  }

  // Busy-machine step function.
  std::vector<std::pair<double, double>> steps;
  steps.emplace_back(x(0.0), y(0.0));
  for (const BusySegment& segment : busy_timeline(result.schedule)) {
    steps.emplace_back(x(segment.begin), steps.back().second);
    steps.emplace_back(x(segment.begin), y(segment.busy_machines));
    steps.emplace_back(x(segment.end), y(segment.busy_machines));
  }
  steps.emplace_back(x(horizon), steps.back().second);
  svg.polyline(steps, default_palette().front(), 2.0);

  // Covered intervals band along the bottom.
  const double band_y = kTop + kPlotH + 12.0;
  svg.text(kLeft - 8.0, band_y + kBandH * 0.7, "covered", 10.0, "#111111",
           "end");
  for (const CoveredInterval& interval : intervals) {
    svg.rect(x(interval.begin), band_y,
             std::max(1.0, x(interval.end) - x(interval.begin)), kBandH,
             "#e6194b", "#990000");
  }

  // Time axis ticks.
  const double axis_y = band_y + kBandH + 16.0;
  for (int tick = 0; tick <= 4; ++tick) {
    const double value = horizon * tick / 4.0;
    svg.text(x(value), axis_y, Table::format(value, 1), 10.0, "#111111",
             "middle");
  }
  return svg;
}

}  // namespace slacksched
