// The adaptive lower-bound adversary of Theorem 1.
//
// Playing against ANY deterministic immediate-commitment algorithm, the
// adversary submits jobs in three phases:
//
//   Phase 1: one unit job J_1(0, 1, d_1) with a huge deadline. Rejection
//            makes the competitive ratio unbounded; otherwise let t be the
//            start time the algorithm committed to.
//   Phase 2: up to m subphases of up to 2m identical jobs
//            J_{2,h}(t, p_{2,h}, t + 2 p_{2,h}) with p_{2,h} chosen by the
//            overlap-interval halving of Lemma 1, so each accepted job must
//            occupy a fresh machine. A subphase ends on the first
//            acceptance; a fully rejected subphase u ends the phase
//            (stopping the game if u < k).
//   Phase 3: subphases h = u..m of m identical jobs
//            J_{3,h}(t, (f_h - 1) p_{2,u}, t + f_h p_{2,u}) using the
//            ratio-function parameters f_h; again one acceptance ends a
//            subphase, and a fully rejected subphase ends the game.
//
// The adversary constructs a certificate optimal schedule for the final
// stop point (Lemmas 2 and 4), so the achieved ratio OPT/ALG is exact and,
// by Theorem 1, at least c(eps, m) - O(beta) whatever the algorithm does.
#pragma once

#include <string>
#include <vector>

#include "core/ratio_function.hpp"
#include "job/instance.hpp"
#include "sched/online.hpp"
#include "sched/schedule.hpp"

namespace slacksched {

/// Parameters of the adversary.
struct AdversaryConfig {
  double eps = 0.1;
  int m = 2;
  /// The paper's "arbitrarily small" interval width; the achieved ratio
  /// deviates from c(eps, m) by O(beta).
  double beta = 1e-6;
  /// Deadline of the phase-1 job. Must exceed the algorithm's committed
  /// start of J_1 plus the full phase-2/3 horizon; checked at runtime.
  TimePoint d1 = 1e9;
};

/// Where the game stopped.
enum class GameStop {
  kRejectedFirstJob,  ///< unbounded ratio
  kPhase2Early,       ///< fully rejected subphase u < k (Lemma 2)
  kPhase3,            ///< fully rejected phase-3 subphase (Lemma 4)
};

[[nodiscard]] std::string to_string(GameStop stop);

/// One submission and the algorithm's reply.
struct GameEvent {
  Job job;
  Decision decision;
  int phase = 1;     ///< 1, 2 or 3
  int subphase = 0;  ///< h within the phase (1-based; 0 in phase 1)
};

/// Complete record of one game.
struct GameResult {
  std::vector<GameEvent> trace;
  Instance instance;          ///< every submitted job, in submission order
  Schedule online_schedule;   ///< what the algorithm committed to
  Schedule optimal_schedule;  ///< the adversary's certificate
  double alg_volume = 0.0;
  double opt_volume = 0.0;
  double ratio = 0.0;  ///< opt/alg; +inf when unbounded
  GameStop stop = GameStop::kPhase3;
  int stop_subphase = 0;
  RatioSolution prediction;  ///< c(eps, m) and the f_q in play

  [[nodiscard]] bool unbounded() const {
    return stop == GameStop::kRejectedFirstJob;
  }
};

/// Plays the adversary against `algorithm` (which must schedule on
/// config.m machines). Illegal commitments by the algorithm throw
/// PostconditionError — a broken algorithm cannot win by cheating.
class LowerBoundGame {
 public:
  explicit LowerBoundGame(const AdversaryConfig& config);

  [[nodiscard]] GameResult play(OnlineScheduler& algorithm) const;

  [[nodiscard]] const AdversaryConfig& config() const { return config_; }
  [[nodiscard]] const RatioSolution& prediction() const { return solution_; }

 private:
  AdversaryConfig config_;
  RatioSolution solution_;
};

/// Renders the adversary's decision tree (the structure of Fig. 2) for the
/// given parameters as indented text: every reachable stop point with the
/// job parameters and the resulting competitive ratio.
[[nodiscard]] std::string decision_tree_description(double eps, int m);

}  // namespace slacksched
