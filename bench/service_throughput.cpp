// SERVICE: end-to-end throughput of the sharded admission gateway.
//
// Replays a multi-million-job synthetic stream through AdmissionGateway at
// 1..16 shards (each shard = an independent Threshold engine on its own
// machine group) and reports sustained submissions/second, backpressure
// retries, and the final metrics snapshot. Every configuration must finish
// clean: zero commitment violations, every submitted job decided. Emits
// BENCH_service.json so the perf trajectory is machine-readable.
//
// Expectation on a multi-core host: aggregate throughput scales with the
// shard count (the acceptance criterion is >3x at 8 shards on 8 cores).
// On fewer cores the run still validates correctness and records
// hardware_concurrency so the numbers stay interpretable.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/threshold.hpp"
#include "service/gateway.hpp"
#include "workload/generators.hpp"

namespace {

using namespace slacksched;

constexpr double kEps = 0.1;
constexpr int kMachinesPerShard = 8;

struct RunStats {
  int shards = 0;
  std::size_t jobs = 0;
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  double accepted_volume = 0.0;
  std::uint64_t backpressure_retries = 0;
  std::size_t peak_queue_depth = 0;
  std::size_t batches = 0;
  bool clean = false;
  std::string violation;
};

/// Pushes every job in [begin, end) through the gateway, retrying the
/// backpressure-shed tail until the shard accepts it. Hash routing keeps a
/// retried job on its shard, so retrying cannot starve: the consumer always
/// drains. Returns the number of retried submissions.
std::uint64_t submit_range(AdmissionGateway& gateway, const Job* jobs,
                           std::size_t count, std::size_t chunk) {
  std::uint64_t retries = 0;
  std::vector<Outcome> statuses;
  std::vector<Job> pending;
  std::vector<Job> still_pending;
  for (std::size_t offset = 0; offset < count; offset += chunk) {
    const std::size_t n = std::min(chunk, count - offset);
    pending.assign(jobs + offset, jobs + offset + n);
    while (!pending.empty()) {
      const BatchSubmitResult result = gateway.submit_batch(
          std::span<const Job>(pending.data(), pending.size()), &statuses);
      if (result.rejected_queue_full == 0) break;
      retries += result.rejected_queue_full;
      still_pending.clear();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (statuses[i] == Outcome::kRejectedQueueFull) {
          still_pending.push_back(pending[i]);
        }
      }
      pending.swap(still_pending);
      std::this_thread::yield();  // give the consumers a slice
    }
  }
  return retries;
}

RunStats run_config(const Instance& instance, int shards,
                    unsigned producers) {
  GatewayConfig config;
  config.shards = shards;
  config.queue_capacity = 8192;
  config.batch_size = 512;
  config.routing = RoutingPolicy::kHash;
  config.record_decisions = false;  // multi-million-job run: metrics only
  AdmissionGateway gateway(config, [](int) {
    return std::make_unique<ThresholdScheduler>(kEps, kMachinesPerShard);
  });

  const Job* jobs = instance.jobs().data();
  const std::size_t n = instance.size();
  const std::size_t per_producer = (n + producers - 1) / producers;
  std::vector<std::uint64_t> retries(producers, 0);

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
      const std::size_t begin = p * per_producer;
      const std::size_t end = std::min(begin + per_producer, n);
      if (begin >= end) break;
      threads.emplace_back([&, p, begin, end] {
        retries[p] = submit_range(gateway, jobs + begin, end - begin, 1024);
      });
    }
    for (auto& t : threads) t.join();
  }
  const GatewayResult result = gateway.finish();
  const auto stop = std::chrono::steady_clock::now();

  RunStats stats;
  stats.shards = shards;
  stats.jobs = n;
  stats.seconds = std::chrono::duration<double>(stop - start).count();
  stats.jobs_per_sec = static_cast<double>(n) / stats.seconds;
  stats.accepted = result.merged.accepted;
  stats.rejected = result.merged.rejected;
  stats.accepted_volume = result.merged.accepted_volume;
  for (const std::uint64_t r : retries) stats.backpressure_retries += r;
  stats.peak_queue_depth = result.metrics.total.peak_queue_depth;
  stats.batches = result.metrics.total.batches;
  stats.clean = result.clean() && result.merged.submitted == n;
  stats.violation = result.first_violation();
  return stats;
}

void write_json(const std::vector<RunStats>& runs, std::size_t jobs,
                unsigned cores, unsigned producers, double speedup_8v1) {
  std::ofstream out("BENCH_service.json");
  out << "{\n"
      << "  \"bench\": \"service_throughput\",\n"
      << "  \"scheduler\": \"Threshold(eps=" << kEps
      << ", m=" << kMachinesPerShard << " per shard)\",\n"
      << "  \"routing\": \"hash\",\n"
      << "  \"jobs\": " << jobs << ",\n"
      << "  \"producers\": " << producers << ",\n"
      << "  \"hardware_concurrency\": " << cores << ",\n"
      << "  \"speedup_8shard_vs_1shard\": " << speedup_8v1 << ",\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const RunStats& r = runs[i];
    out << "    {\"shards\": " << r.shards << ", \"seconds\": " << r.seconds
        << ", \"jobs_per_sec\": " << r.jobs_per_sec
        << ", \"accepted\": " << r.accepted
        << ", \"rejected\": " << r.rejected
        << ", \"accepted_volume\": " << r.accepted_volume
        << ", \"backpressure_retries\": " << r.backpressure_retries
        << ", \"peak_queue_depth\": " << r.peak_queue_depth
        << ", \"batches\": " << r.batches
        << ", \"clean\": " << (r.clean ? "true" : "false") << "}"
        << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Optional override: service_throughput [jobs], default 1M (the
  // acceptance bar); smoke-test with a smaller count, e.g. 100000.
  std::size_t n = 1'000'000;
  if (argc > 1) {
    char* end = nullptr;
    n = static_cast<std::size_t>(std::strtoull(argv[1], &end, 10));
    if (end == argv[1] || *end != '\0' || n == 0) {
      std::fprintf(stderr, "usage: %s [jobs>0]  (got '%s')\n", argv[0], argv[1]);
      return 2;
    }
  }

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  // Producers stay fixed across shard counts so the consumer side is the
  // variable under test; two are enough to saturate the batched ingest.
  const unsigned producers = cores >= 4 ? 2 : 1;

  std::printf("SERVICE: sharded admission-gateway throughput\n");
  std::printf("  jobs=%zu  scheduler=Threshold(eps=%.2f, m=%d/shard)  "
              "producers=%u  cores=%u\n\n",
              n, kEps, kMachinesPerShard, producers, cores);

  WorkloadConfig wconfig;
  wconfig.n = n;
  wconfig.eps = kEps;
  wconfig.arrival_rate = 4.0;
  wconfig.seed = 7;
  const Instance instance = generate_workload(wconfig);

  std::printf("  %6s  %10s  %14s  %10s  %12s  %9s  %s\n", "shards", "seconds",
              "jobs/sec", "accepted", "bp-retries", "peak-q", "status");
  std::vector<RunStats> runs;
  bool all_clean = true;
  for (const int shards : {1, 2, 4, 8, 16}) {
    const RunStats stats = run_config(instance, shards, producers);
    std::printf("  %6d  %10.3f  %14.0f  %10zu  %12llu  %9zu  %s\n",
                stats.shards, stats.seconds, stats.jobs_per_sec,
                stats.accepted,
                static_cast<unsigned long long>(stats.backpressure_retries),
                stats.peak_queue_depth,
                stats.clean ? "clean" : stats.violation.c_str());
    all_clean = all_clean && stats.clean;
    runs.push_back(stats);
  }

  double speedup = 0.0;
  for (const RunStats& r : runs) {
    if (r.shards == 8) speedup = r.jobs_per_sec / runs.front().jobs_per_sec;
  }
  std::printf("\n  8-shard vs 1-shard aggregate throughput: %.2fx"
              " (on %u hardware threads)\n",
              speedup, cores);

  write_json(runs, n, cores, producers, speedup);
  std::printf("  wrote BENCH_service.json\n");

  if (!all_clean) {
    std::printf("  FATAL: a configuration was not clean\n");
    return 1;
  }
  return 0;
}
