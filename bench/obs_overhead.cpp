// OBS: cost of the observability layer on the admission hot path.
//
// Replays the same synthetic stream through the 4-shard gateway three
// ways — observability off, decision tracing on, tracing plus the
// background metrics publisher — with the repetitions interleaved: the
// three modes of a rep run back-to-back (rotating order), a discarded
// warmup rep absorbs cold-start effects, and the reported overhead is
// the median of the per-rep paired throughput ratios, so machine-level
// noise phases divide out. The acceptance gate (scripts/perf_check.py
// --obs-json) requires tracing to cost <3% of the baseline throughput
// and the publisher to never block ingest.
//
// The publisher mode also proves the exposition contract end to end: the
// atomically-replaced textfile left on disk after finish() must report
// exactly the GatewayResult counters (submitted_total, the +Inf latency
// bucket, and _count all equal merged.submitted), and the drained trace
// must account for every rendered decision (drained + dropped ==
// submitted) and survive a CSV round trip. Emits BENCH_obs.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_env.hpp"
#include "core/threshold.hpp"
#include "service/gateway.hpp"
#include "service/metrics_exporter.hpp"
#include "service/trace_ring.hpp"
#include "workload/generators.hpp"

namespace {

using namespace slacksched;

constexpr double kEps = 0.1;
constexpr int kShards = 4;
constexpr int kMachinesPerShard = 8;
constexpr int kReps = 20;
const char* const kTextfile = "BENCH_obs_metrics.prom";

enum class Mode { kOff, kTracing, kTracingPublisher };

const char* mode_name(Mode mode) {
  switch (mode) {
    case Mode::kOff: return "off";
    case Mode::kTracing: return "tracing";
    case Mode::kTracingPublisher: return "tracing+publisher";
  }
  return "unknown";
}

struct RunStats {
  double seconds = 0.0;
  double jobs_per_sec = 0.0;
  bool clean = false;
  // Filled in tracing modes:
  std::size_t trace_drained = 0;
  std::uint64_t trace_dropped = 0;
  bool trace_accounted = false;
  bool trace_csv_round_trip = false;
  // Filled in the publisher mode:
  bool textfile_consistent = false;
  std::uint64_t publishes = 0;
};

/// Pushes [jobs, jobs+count) through the gateway, retrying the
/// backpressure-shed tail (hash routing keeps a retried job on its shard,
/// so the consumer always drains it eventually).
void submit_range(AdmissionGateway& gateway, const Job* jobs,
                  std::size_t count, std::size_t chunk) {
  std::vector<Outcome> statuses;
  std::vector<Job> pending;
  std::vector<Job> still_pending;
  for (std::size_t offset = 0; offset < count; offset += chunk) {
    const std::size_t n = std::min(chunk, count - offset);
    pending.assign(jobs + offset, jobs + offset + n);
    while (!pending.empty()) {
      const BatchSubmitResult result = gateway.submit_batch(
          std::span<const Job>(pending.data(), pending.size()), &statuses);
      if (result.rejected_queue_full == 0) break;
      still_pending.clear();
      for (std::size_t i = 0; i < pending.size(); ++i) {
        if (statuses[i] == Outcome::kRejectedQueueFull) {
          still_pending.push_back(pending[i]);
        }
      }
      pending.swap(still_pending);
      std::this_thread::yield();
    }
  }
}

/// Extracts the integer sample value of `name` (exact-match up to the
/// value separator) from an exposition page; -1 when absent.
long long sample_value(const std::string& page, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t at = 0;
  while ((at = page.find(needle, at)) != std::string::npos) {
    if (at == 0 || page[at - 1] == '\n') {
      return std::atoll(page.c_str() + at + needle.size());
    }
    at += needle.size();
  }
  return -1;
}

RunStats run_mode(const Instance& instance, Mode mode, unsigned producers) {
  GatewayConfig config;
  config.shards = kShards;
  config.queue_capacity = 8192;
  config.batch_size = 512;
  config.routing = RoutingPolicy::kHash;
  config.record_decisions = false;
  config.enable_tracing = mode != Mode::kOff;
  config.trace_capacity = std::size_t{1} << 12;
  if (mode == Mode::kTracingPublisher) {
    config.metrics_textfile = kTextfile;
    // Aggressive cadence (a dashboard scrapes at 1 s+): concurrent
    // snapshot+render+rename cycles race live ingest. The steady-state
    // cost fraction is per-publish-cost / period, so the period is part
    // of the measurement contract, not a free knob.
    config.metrics_period = std::chrono::milliseconds(250);
  }
  AdmissionGateway gateway(config, [](int) {
    return std::make_unique<ThresholdScheduler>(kEps, kMachinesPerShard);
  });

  const Job* jobs = instance.jobs().data();
  const std::size_t n = instance.size();
  const std::size_t per_producer = (n + producers - 1) / producers;

  const auto start = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (unsigned p = 0; p < producers; ++p) {
      const std::size_t begin = p * per_producer;
      const std::size_t end = std::min(begin + per_producer, n);
      if (begin >= end) break;
      threads.emplace_back([&, begin, end] {
        submit_range(gateway, jobs + begin, end - begin, 1024);
      });
    }
    for (auto& t : threads) t.join();
  }
  const GatewayResult result = gateway.finish();
  const auto stop = std::chrono::steady_clock::now();

  RunStats stats;
  stats.seconds = std::chrono::duration<double>(stop - start).count();
  stats.jobs_per_sec = static_cast<double>(n) / stats.seconds;
  stats.clean = result.clean() && result.merged.submitted == n;

  if (mode != Mode::kOff) {
    // Every rendered decision is either in the rings or counted dropped.
    const std::vector<TraceEvent> trace = gateway.drain_trace();
    for (int s = 0; s < kShards; ++s) {
      const TraceRing* ring = gateway.trace_ring(s);
      if (ring != nullptr) stats.trace_dropped += ring->dropped();
    }
    stats.trace_drained = trace.size();
    stats.trace_accounted =
        trace.size() + stats.trace_dropped == result.merged.submitted;
    // The drained window round-trips through the CSV audit format.
    std::ostringstream csv;
    write_trace_csv(csv, trace);
    std::istringstream in(csv.str());
    stats.trace_csv_round_trip = read_trace_csv(in) == trace;
  }

  if (mode == Mode::kTracingPublisher) {
    stats.publishes = gateway.metrics_publisher()->publishes();
    std::ifstream file(kTextfile, std::ios::binary);
    std::ostringstream buffer;
    buffer << file.rdbuf();
    const std::string page = buffer.str();
    const auto submitted = static_cast<long long>(result.merged.submitted);
    stats.textfile_consistent =
        sample_value(page, "slacksched_submitted_total") == submitted &&
        sample_value(page,
                     "slacksched_admit_latency_seconds_bucket{le=\"+Inf\"}") ==
            submitted &&
        sample_value(page, "slacksched_admit_latency_seconds_count") ==
            submitted &&
        sample_value(page, "slacksched_accepted_total") ==
            static_cast<long long>(result.merged.accepted);
  }
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  // Optional override: obs_overhead [jobs], default 400k; smoke-test with
  // a smaller count, e.g. 30000.
  std::size_t n = 400'000;
  if (argc > 1) {
    char* end = nullptr;
    n = static_cast<std::size_t>(std::strtoull(argv[1], &end, 10));
    if (end == argv[1] || *end != '\0' || n == 0) {
      std::fprintf(stderr, "usage: %s [jobs>0]  (got '%s')\n", argv[0],
                   argv[1]);
      return 2;
    }
  }

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const unsigned producers = cores >= 4 ? 2 : 1;

  std::printf("OBS: observability overhead on the admission hot path\n");
  std::printf("  jobs=%zu  shards=%d  scheduler=Threshold(eps=%.2f, m=%d"
              "/shard)  producers=%u  cores=%u  reps=%d (interleaved, "
              "median paired ratio)\n\n",
              n, kShards, kEps, kMachinesPerShard, producers, cores, kReps);

  WorkloadConfig wconfig;
  wconfig.n = n;
  wconfig.eps = kEps;
  wconfig.arrival_rate = 4.0;
  wconfig.seed = 7;
  const Instance instance = generate_workload(wconfig);

  const Mode modes[] = {Mode::kOff, Mode::kTracing, Mode::kTracingPublisher};
  RunStats best[3];
  // Per-rep paired ratios: the three modes of one rep run back-to-back,
  // so machine-level noise phases (shared runners drift on a scale of
  // seconds) hit them almost equally and divide out; the median across
  // reps then discards the reps a noise spike did split. This is far more
  // stable than comparing each mode's best-of throughput on busy hosts.
  std::vector<double> tracing_ratio;
  std::vector<double> publisher_ratio;
  bool all_clean = true;
  // rep -1 is a discarded warmup (page faults, allocator growth, branch
  // predictors); within a recorded rep the execution order rotates so any
  // position-in-rep bias (inherited cache state, scheduler placement) is
  // spread across all three modes instead of always favouring one.
  for (int rep = -1; rep < kReps; ++rep) {
    RunStats rep_stats[3];
    for (int slot = 0; slot < 3; ++slot) {
      const int m = (slot + std::max(rep, 0)) % 3;
      const RunStats stats = run_mode(instance, modes[m], producers);
      rep_stats[m] = stats;
      if (rep < 0) continue;
      all_clean = all_clean && stats.clean;
      if (stats.jobs_per_sec > best[m].jobs_per_sec) best[m] = stats;
      std::printf("  rep %d  %-18s  %8.3fs  %12.0f jobs/sec  %s\n", rep,
                  mode_name(modes[m]), stats.seconds, stats.jobs_per_sec,
                  stats.clean ? "clean" : "NOT CLEAN");
    }
    if (rep < 0) continue;
    tracing_ratio.push_back(rep_stats[1].jobs_per_sec /
                            rep_stats[0].jobs_per_sec);
    publisher_ratio.push_back(rep_stats[2].jobs_per_sec /
                              rep_stats[0].jobs_per_sec);
  }

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t h = v.size() / 2;
    return v.size() % 2 == 1 ? v[h] : 0.5 * (v[h - 1] + v[h]);
  };
  const double tracing_overhead = 1.0 - median(tracing_ratio);
  const double publisher_overhead = 1.0 - median(publisher_ratio);
  std::printf("\n  tracing overhead:            %+6.2f%%\n",
              100.0 * tracing_overhead);
  std::printf("  tracing+publisher overhead:  %+6.2f%%\n",
              100.0 * publisher_overhead);
  std::printf("  trace events: drained=%zu dropped=%llu accounted=%s "
              "csv_round_trip=%s\n",
              best[1].trace_drained,
              static_cast<unsigned long long>(best[1].trace_dropped),
              best[1].trace_accounted ? "yes" : "NO",
              best[1].trace_csv_round_trip ? "yes" : "NO");
  std::printf("  textfile: consistent=%s publishes=%llu (%s)\n",
              best[2].textfile_consistent ? "yes" : "NO",
              static_cast<unsigned long long>(best[2].publishes), kTextfile);

  {
    std::ofstream out("BENCH_obs.json");
    out << "{\n"
        << "  \"bench\": \"obs_overhead\",\n"
        << "  \"jobs\": " << n << ",\n"
        << "  \"shards\": " << kShards << ",\n"
        << bench::BenchEnv::detect(producers, /*pinned=*/false, "closed")
               .json_fields()
        << "  \"reps\": " << kReps << ",\n"
        << "  \"tracing_overhead\": " << tracing_overhead << ",\n"
        << "  \"publisher_overhead\": " << publisher_overhead << ",\n"
        << "  \"trace_accounted\": "
        << (best[1].trace_accounted ? "true" : "false") << ",\n"
        << "  \"trace_csv_round_trip\": "
        << (best[1].trace_csv_round_trip ? "true" : "false") << ",\n"
        << "  \"textfile_consistent\": "
        << (best[2].textfile_consistent ? "true" : "false") << ",\n"
        << "  \"publishes\": " << best[2].publishes << ",\n"
        << "  \"clean\": " << (all_clean ? "true" : "false") << ",\n"
        << "  \"runs\": [\n";
    for (int m = 0; m < 3; ++m) {
      out << "    {\"mode\": \"" << mode_name(modes[m])
          << "\", \"seconds\": " << best[m].seconds
          << ", \"jobs_per_sec\": " << best[m].jobs_per_sec
          << ", \"clean\": " << (best[m].clean ? "true" : "false") << "}"
          << (m + 1 < 3 ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
  }
  std::printf("  wrote BENCH_obs.json\n");

  if (!all_clean || !best[1].trace_accounted ||
      !best[1].trace_csv_round_trip || !best[2].textfile_consistent) {
    std::printf("  FATAL: an observability invariant failed\n");
    return 1;
  }
  return 0;
}
