#include "core/threshold.hpp"

#include <algorithm>

#include "common/expects.hpp"

namespace slacksched {

ThresholdScheduler::ThresholdScheduler(const ThresholdConfig& config)
    : config_(config),
      solution_(config.k_override
                    ? RatioFunction::solve_with_k(config.eps, config.machines,
                                                  *config.k_override)
                    : RatioFunction::solve(config.eps, config.machines)),
      frontier_(config.machines,
                config.speeds ? config.speeds->speeds()
                              : std::vector<double>{}) {
  SLACKSCHED_EXPECTS(config.machines >= 1);
  SLACKSCHED_EXPECTS(config.eps > 0.0 && config.eps <= 1.0);
  SLACKSCHED_EXPECTS(!config.speeds ||
                     config.speeds->machines() == config.machines);
}

ThresholdScheduler::ThresholdScheduler(double eps, int machines)
    : ThresholdScheduler(
          ThresholdConfig{eps, machines, std::nullopt, std::nullopt}) {}

const SpeedProfile* ThresholdScheduler::speed_profile() const {
  if (config_.speeds && !config_.speeds->uniform()) return &*config_.speeds;
  return nullptr;
}

int ThresholdScheduler::machines() const { return config_.machines; }

void ThresholdScheduler::reset() { frontier_.reset(); }

std::string ThresholdScheduler::name() const {
  std::string n = "Threshold(eps=" + std::to_string(config_.eps) +
                  ", m=" + std::to_string(config_.machines) + ")";
  if (config_.k_override) {
    n += "[k=" + std::to_string(*config_.k_override) + "]";
  }
  if (speed_profile() != nullptr) n += "[" + config_.speeds->label() + "]";
  return n;
}

std::vector<Duration> ThresholdScheduler::loads(TimePoint now) const {
  std::vector<Duration> result(static_cast<std::size_t>(config_.machines));
  for (int i = 0; i < config_.machines; ++i) {
    result[static_cast<std::size_t>(i)] = frontier_.load(i, now);
  }
  return result;
}

TimePoint ThresholdScheduler::deadline_threshold(TimePoint now) const {
  // Position h (1-based, decreasing load) carries factor f_h for h >= k.
  // The FrontierSet maintains that order incrementally, so no sort and no
  // load snapshot: scan the maintained order and stop at the first idle
  // machine — every later position has load 0 and contributes only `now`,
  // which d_lim already starts from.
  TimePoint d_lim = now;  // with zero loads the threshold is `now`
  for (int h = solution_.k; h <= frontier_.active_machines(); ++h) {
    const TimePoint frontier = frontier_.frontier_at(h - 1);
    if (frontier <= now) break;
    d_lim = std::max(d_lim, now + (frontier - now) * solution_.f_at(h));
  }
  return d_lim;
}

Decision ThresholdScheduler::on_arrival(const Job& job) {
  SLACKSCHED_EXPECTS(job.structurally_valid());
  const TimePoint t = job.release;

  // Decision phase (Lines 4-6): reject iff d_j < d_lim.
  const TimePoint d_lim = deadline_threshold(t);
  if (definitely_less(job.deadline, d_lim)) {
    return Decision::reject();
  }

  // Allocation phase (Lines 9-10): best fit — the most loaded candidate
  // machine that still completes the job on time; start right after its
  // outstanding load. Binary search over the maintained order (feasibility
  // is monotone in the position) instead of a linear scan.
  const int best = frontier_.best_fit(t, job.proc, job.deadline);
  if (best < 0) {
    // Only reachable with heterogeneous speeds, where the identical-machine
    // allocation guarantee below does not hold: the threshold passed but no
    // machine is fast enough given its load. Reject.
    SLACKSCHED_ENSURES(!frontier_.uniform_speeds());
    return Decision::reject();
  }
  // On identical machines the least loaded machine is always a candidate:
  // with l = min load, either l <= eps * p (then l + p <= (1+eps) p
  // <= d - t by the slack condition) or l > eps * p (then l + p
  // < l (1+eps)/eps = l * f_m <= d_lim - t <= d - t). So acceptance always
  // allocates.

  const TimePoint start = t + frontier_.load(best, t);
  frontier_.update(best, start + frontier_.exec_time(best, job.proc));
  return Decision::accept(best, start);
}

bool ThresholdScheduler::restore_commitment(const Job& job, int machine,
                                            TimePoint start) {
  if (machine < 0 || machine >= frontier_.size()) return false;
  frontier_.update(machine,
                   std::max(frontier_.frontier(machine),
                            start + frontier_.exec_time(machine, job.proc)));
  return true;
}

bool ThresholdScheduler::supports_elastic() const {
  // The ratio recursion is re-solved per resize, which is only meaningful
  // on identical machines with the paper's own k (a forced k may not even
  // exist for a different machine count).
  return frontier_.uniform_speeds() && !config_.k_override;
}

int ThresholdScheduler::active_machines() const {
  return frontier_.active_machines();
}

int ThresholdScheduler::add_machine() {
  if (!supports_elastic()) return -1;
  const int machine = frontier_.add_machine();
  config_.machines = frontier_.size();
  solution_ =
      RatioFunction::solve(config_.eps, frontier_.active_machines());
  return machine;
}

bool ThresholdScheduler::begin_retire(int machine) {
  if (!supports_elastic()) return false;
  if (machine < 0 || machine >= frontier_.size()) return false;
  if (!frontier_.is_active(machine)) return false;
  if (frontier_.active_machines() <= 1) return false;
  frontier_.begin_retire(machine);
  solution_ =
      RatioFunction::solve(config_.eps, frontier_.active_machines());
  return true;
}

bool ThresholdScheduler::retire_drained(int machine, TimePoint now) const {
  if (machine < 0 || machine >= frontier_.size()) return false;
  return frontier_.retire_drained(machine, now);
}

bool ThresholdScheduler::finish_retire(int machine) {
  if (machine < 0 || machine >= frontier_.size()) return false;
  if (!frontier_.is_retiring(machine)) return false;
  frontier_.finish_retire(machine);
  return true;
}

bool ThresholdScheduler::is_retiring(int machine) const {
  if (machine < 0 || machine >= frontier_.size()) return false;
  return frontier_.is_retiring(machine);
}

int ThresholdScheduler::retire_candidate() const {
  if (!supports_elastic()) return -1;
  return frontier_.retire_candidate();
}

int ThresholdScheduler::busy_machines(TimePoint now) const {
  // Positions [0, p) hold the active machines with frontier > now.
  return frontier_.first_position_not_above(now);
}

ThresholdScheduler make_goldwasser_kerbikov(double eps) {
  return ThresholdScheduler(eps, 1);
}

}  // namespace slacksched
