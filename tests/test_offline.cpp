// Tests of the offline substrate: Dinic max-flow, the preemptive
// fractional upper bound, and the exact branch-and-bound optimum —
// including the cross-checks UB >= OPT >= any online algorithm.
#include <gtest/gtest.h>

#include "baselines/greedy.hpp"
#include "common/expects.hpp"
#include "offline/exact.hpp"
#include "offline/maxflow.hpp"
#include "offline/upper_bound.hpp"
#include "sched/engine.hpp"
#include "workload/generators.hpp"

namespace slacksched {
namespace {

Job make_job(JobId id, TimePoint r, Duration p, TimePoint d) {
  Job j;
  j.id = id;
  j.release = r;
  j.proc = p;
  j.deadline = d;
  return j;
}

// ---------- max flow ----------

TEST(MaxFlow, SingleEdge) {
  MaxFlow f(2);
  f.add_edge(0, 1, 3.5);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 1), 3.5);
}

TEST(MaxFlow, SeriesTakesMinimum) {
  MaxFlow f(3);
  f.add_edge(0, 1, 5.0);
  f.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 2), 2.0);
}

TEST(MaxFlow, ParallelPathsAdd) {
  MaxFlow f(4);
  f.add_edge(0, 1, 3.0);
  f.add_edge(1, 3, 3.0);
  f.add_edge(0, 2, 4.0);
  f.add_edge(2, 3, 4.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 3), 7.0);
}

TEST(MaxFlow, ClassicDiamondWithCrossEdge) {
  // The standard example where augmenting must route through the middle.
  MaxFlow f(4);
  f.add_edge(0, 1, 10.0);
  f.add_edge(0, 2, 10.0);
  f.add_edge(1, 2, 1.0);
  f.add_edge(1, 3, 8.0);
  f.add_edge(2, 3, 10.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 3), 18.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  MaxFlow f(4);
  f.add_edge(0, 1, 5.0);
  f.add_edge(2, 3, 5.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 3), 0.0);
}

TEST(MaxFlow, FlowOnReportsPerEdgeFlow) {
  MaxFlow f(3);
  const auto e1 = f.add_edge(0, 1, 5.0);
  const auto e2 = f.add_edge(1, 2, 2.0);
  EXPECT_DOUBLE_EQ(f.max_flow(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(f.flow_on(e1), 2.0);
  EXPECT_DOUBLE_EQ(f.flow_on(e2), 2.0);
}

TEST(MaxFlow, FractionalCapacities) {
  MaxFlow f(3);
  f.add_edge(0, 1, 0.25);
  f.add_edge(0, 1, 0.5);
  f.add_edge(1, 2, 10.0);
  EXPECT_NEAR(f.max_flow(0, 2), 0.75, 1e-9);
}

TEST(MaxFlow, InputValidation) {
  EXPECT_THROW(MaxFlow(1), PreconditionError);
  MaxFlow f(2);
  EXPECT_THROW(f.add_edge(0, 5, 1.0), PreconditionError);
  EXPECT_THROW(f.add_edge(0, 1, -1.0), PreconditionError);
  EXPECT_THROW(f.max_flow(0, 0), PreconditionError);
}

// ---------- fractional upper bound ----------

TEST(UpperBound, EmptyInstanceIsZero) {
  EXPECT_DOUBLE_EQ(preemptive_fractional_upper_bound(Instance{}, 2), 0.0);
}

TEST(UpperBound, SingleJobEqualsItsVolume) {
  const Instance inst({make_job(1, 0.0, 3.0, 5.0)});
  EXPECT_NEAR(preemptive_fractional_upper_bound(inst, 1), 3.0, 1e-9);
}

TEST(UpperBound, CapsAtWindowCapacity) {
  // Two unit-window jobs in the same window of one machine: capacity 1.
  const Instance inst({make_job(1, 0.0, 1.0, 1.0), make_job(2, 0.0, 1.0, 1.0)});
  EXPECT_NEAR(preemptive_fractional_upper_bound(inst, 1), 1.0, 1e-9);
  // With two machines both fit.
  EXPECT_NEAR(preemptive_fractional_upper_bound(inst, 2), 2.0, 1e-9);
}

TEST(UpperBound, PerJobParallelismCap) {
  // One job of length 4 in window [0, 2]: even on many machines a single
  // job cannot run on two machines at once, so at most 2 units fit.
  const Instance inst({make_job(1, 0.0, 4.0, 2.0)});
  EXPECT_NEAR(preemptive_fractional_upper_bound(inst, 8), 2.0, 1e-9);
}

TEST(UpperBound, PreemptionSplitAcrossWindows) {
  // Job A [0,4] len 2; job B [1,3] len 2 with a private middle window; a
  // preemptive schedule interleaves: total 4 on one machine.
  const Instance inst({make_job(1, 0.0, 2.0, 4.0), make_job(2, 1.0, 2.0, 3.0)});
  EXPECT_NEAR(preemptive_fractional_upper_bound(inst, 1), 4.0, 1e-9);
}

TEST(UpperBound, EqualsTotalVolumeWhenEverythingFits) {
  WorkloadConfig config;
  config.n = 40;
  config.eps = 1.0;
  config.arrival_rate = 0.05;  // almost no contention
  config.size_max = 2.0;
  config.seed = 4;
  const Instance inst = generate_workload(config);
  EXPECT_NEAR(preemptive_fractional_upper_bound(inst, 4),
              inst.total_volume(), 1e-6);
}

// ---------- exact feasibility ----------

TEST(ExactFeasible, EmptySetIsFeasible) {
  EXPECT_TRUE(exact_feasible({}, 1));
}

TEST(ExactFeasible, TwoTightJobsNeedTwoMachines) {
  const std::vector<Job> jobs{make_job(1, 0.0, 2.0, 2.0),
                              make_job(2, 0.0, 2.0, 2.0)};
  EXPECT_FALSE(exact_feasible(jobs, 1));
  EXPECT_TRUE(exact_feasible(jobs, 2));
}

TEST(ExactFeasible, RequiresWaitingOrder) {
  // Feasible only if the tight job goes first.
  const std::vector<Job> jobs{make_job(1, 0.0, 2.0, 4.0),
                              make_job(2, 0.0, 2.0, 2.0)};
  EXPECT_TRUE(exact_feasible(jobs, 1));
}

TEST(ExactFeasible, ReleaseDatesForceIdleTime) {
  // Job 2 releases at 3; job 1 [0,2] leaves a gap; both fit with idling.
  const std::vector<Job> jobs{make_job(1, 0.0, 2.0, 2.0),
                              make_job(2, 3.0, 2.0, 5.0)};
  EXPECT_TRUE(exact_feasible(jobs, 1));
}

TEST(ExactFeasible, InterleavingImpossibleNonPreemptively) {
  // B's window [1,3] sits strictly inside A's execution need: A len 3 due
  // 4, B len 2 due 3 released 1. One machine cannot do both without
  // preemption.
  const std::vector<Job> jobs{make_job(1, 0.0, 3.0, 4.0),
                              make_job(2, 1.0, 2.0, 3.0)};
  EXPECT_FALSE(exact_feasible(jobs, 1));
  EXPECT_TRUE(exact_feasible(jobs, 2));
}

TEST(ExactFeasible, RespectsJobCap) {
  std::vector<Job> jobs;
  for (int i = 0; i < 25; ++i) {
    jobs.push_back(make_job(i + 1, 0.0, 1.0, 100.0));
  }
  EXPECT_THROW((void)exact_feasible(jobs, 2), PreconditionError);
}

// ---------- exact optimum ----------

TEST(ExactOptimal, TakesAllWhenFeasible) {
  const Instance inst({make_job(1, 0.0, 1.0, 3.0), make_job(2, 0.0, 1.0, 3.0),
                       make_job(3, 0.0, 1.0, 3.0)});
  const ExactResult result = exact_optimal_load(inst, 1);
  EXPECT_NEAR(result.value, 3.0, 1e-9);
  EXPECT_EQ(result.accepted.size(), 3u);
}

TEST(ExactOptimal, PicksLargerConflictingJob) {
  // Two mutually exclusive jobs: take the big one.
  const Instance inst({make_job(1, 0.0, 2.0, 2.0), make_job(2, 0.0, 1.9, 1.9)});
  const ExactResult result = exact_optimal_load(inst, 1);
  EXPECT_NEAR(result.value, 2.0, 1e-9);
  ASSERT_EQ(result.accepted.size(), 1u);
  EXPECT_EQ(result.accepted[0], 1);
}

TEST(ExactOptimal, BeatsGreedyOnAdversarialPair) {
  // Greedy accepts the first (small) job and must reject the large one;
  // the optimum does the opposite.
  const Instance inst(
      {make_job(1, 0.0, 1.0, 1.5), make_job(2, 0.0, 10.0, 10.5)});
  GreedyScheduler greedy(1);
  const RunResult greedy_run = run_online(greedy, inst);
  const ExactResult opt = exact_optimal_load(inst, 1);
  EXPECT_NEAR(greedy_run.metrics.accepted_volume, 1.0, 1e-9);
  EXPECT_NEAR(opt.value, 10.0, 1e-9);
}

TEST(ExactOptimal, EmptyInstance) {
  const ExactResult result = exact_optimal_load(Instance{}, 2);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_TRUE(result.accepted.empty());
}

/// Cross-check property: greedy <= OPT <= fractional UB on random
/// instances across machine counts and seeds.
class OfflineOrdering
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(OfflineOrdering, GreedyLeOptLeUpperBound) {
  const auto [m, seed] = GetParam();
  WorkloadConfig config;
  config.n = 12;
  config.eps = 0.1;
  config.arrival_rate = 1.5;
  config.size_min = 1.0;
  config.size_max = 6.0;
  config.seed = seed;
  const Instance inst = generate_workload(config);

  GreedyScheduler greedy(m);
  const double greedy_volume =
      run_online(greedy, inst).metrics.accepted_volume;
  const ExactResult opt = exact_optimal_load(inst, m);
  const double ub = preemptive_fractional_upper_bound(inst, m);

  EXPECT_LE(greedy_volume, opt.value + 1e-6);
  EXPECT_LE(opt.value, ub + 1e-6);
  EXPECT_LE(opt.value, inst.total_volume() + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, OfflineOrdering,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(1, 2, 3, 4, 5,
                                                              6, 7, 8)));

/// The accepted set reported by the exact solver is itself feasible.
TEST(ExactOptimal, ReportedSetIsFeasible) {
  WorkloadConfig config;
  config.n = 10;
  config.eps = 0.05;
  config.arrival_rate = 2.0;
  config.seed = 31;
  const Instance inst = generate_workload(config);
  const ExactResult result = exact_optimal_load(inst, 2);

  std::vector<Job> accepted;
  double volume = 0.0;
  for (const Job& j : inst.jobs()) {
    for (JobId id : result.accepted) {
      if (j.id == id) {
        accepted.push_back(j);
        volume += j.proc;
      }
    }
  }
  EXPECT_NEAR(volume, result.value, 1e-9);
  EXPECT_TRUE(exact_feasible(accepted, 2));
}

}  // namespace
}  // namespace slacksched
