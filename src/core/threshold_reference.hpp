// The seed implementation of Algorithm 1, retained verbatim as the
// differential oracle for the FrontierSet-based hot path.
//
// This class recomputes everything from scratch on every arrival — a fresh
// loads() vector, a full O(m log m) sort in deadline_threshold(), and a
// linear best-fit scan — exactly as the library's first implementation did.
// It is deliberately not optimized: the randomized equivalence tests pin
// ThresholdScheduler decision-for-decision against it, and the
// threshold-scaling benchmark (bench/micro_throughput → BENCH_threshold.json)
// reports old-vs-new jobs/sec against it. Do not change its decision logic.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/ratio_function.hpp"
#include "core/threshold.hpp"
#include "sched/online.hpp"

namespace slacksched {

/// Sort-per-arrival reference implementation of the paper's Algorithm 1.
/// Semantically identical to ThresholdScheduler; O(m log m) per arrival and
/// allocating, so only tests and benches should instantiate it.
class ReferenceThresholdScheduler final : public OnlineScheduler {
 public:
  explicit ReferenceThresholdScheduler(const ThresholdConfig& config);
  ReferenceThresholdScheduler(double eps, int machines);

  Decision on_arrival(const Job& job) override;
  [[nodiscard]] int machines() const override;
  void reset() override;
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] TimePoint deadline_threshold(TimePoint now) const;
  [[nodiscard]] const RatioSolution& solution() const { return solution_; }
  [[nodiscard]] std::vector<Duration> loads(TimePoint now) const;

 private:
  ThresholdConfig config_;
  RatioSolution solution_;
  std::vector<TimePoint> frontier_;
};

}  // namespace slacksched
