// Workload-generator properties: the slack condition by construction,
// determinism, distribution bounds, arrival ordering, and trace I/O.
#include "workload/generators.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <sstream>

#include "common/expects.hpp"
#include "workload/trace_io.hpp"

namespace slacksched {
namespace {

TEST(Workload, DeterministicInSeed) {
  WorkloadConfig config;
  config.n = 200;
  config.seed = 77;
  const Instance a = generate_workload(config);
  const Instance b = generate_workload(config);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(Workload, SeedChangesInstance) {
  WorkloadConfig config;
  config.n = 200;
  config.seed = 1;
  const Instance a = generate_workload(config);
  config.seed = 2;
  const Instance b = generate_workload(config);
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Workload, ReleasesAreNonDecreasing) {
  for (ArrivalModel arrival :
       {ArrivalModel::kPoisson, ArrivalModel::kUniform, ArrivalModel::kBursty,
        ArrivalModel::kAllAtOnce}) {
    WorkloadConfig config;
    config.n = 300;
    config.arrival = arrival;
    config.seed = 3;
    const Instance inst = generate_workload(config);
    for (std::size_t i = 1; i < inst.size(); ++i) {
      EXPECT_GE(inst[i].release, inst[i - 1].release)
          << to_string(arrival) << " at " << i;
    }
  }
}

TEST(Workload, AllAtOnceReleasesAtZero) {
  WorkloadConfig config;
  config.n = 50;
  config.arrival = ArrivalModel::kAllAtOnce;
  const Instance inst = generate_workload(config);
  for (const Job& j : inst.jobs()) {
    EXPECT_DOUBLE_EQ(j.release, 0.0);
  }
}

TEST(Workload, SizesRespectBounds) {
  for (SizeModel size : {SizeModel::kUniform, SizeModel::kBoundedPareto,
                         SizeModel::kBimodal, SizeModel::kConstant}) {
    WorkloadConfig config;
    config.n = 500;
    config.size = size;
    config.size_min = 2.0;
    config.size_max = 20.0;
    config.seed = 5;
    const Instance inst = generate_workload(config);
    for (const Job& j : inst.jobs()) {
      EXPECT_GE(j.proc, 2.0 - 1e-9) << to_string(size);
      EXPECT_LE(j.proc, 20.0 + 1e-9) << to_string(size);
    }
  }
}

TEST(Workload, ConstantSizesAreConstant) {
  WorkloadConfig config;
  config.n = 100;
  config.size = SizeModel::kConstant;
  config.size_min = 3.5;
  const Instance inst = generate_workload(config);
  for (const Job& j : inst.jobs()) {
    EXPECT_DOUBLE_EQ(j.proc, 3.5);
  }
}

TEST(Workload, TightSlackIsExactlyEps) {
  WorkloadConfig config;
  config.n = 100;
  config.eps = 0.25;
  config.slack = SlackModel::kTight;
  const Instance inst = generate_workload(config);
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(j.slack(), 0.25, 1e-9);
  }
}

TEST(Workload, BurstyCreatesSynchronizedReleases) {
  WorkloadConfig config;
  config.n = 400;
  config.arrival = ArrivalModel::kBursty;
  config.burst_every = 100.0;
  config.burst_size = 10;
  config.arrival_rate = 0.5;
  config.seed = 11;
  const Instance inst = generate_workload(config);
  // At least one burst instant must carry burst_size simultaneous releases.
  std::size_t max_simultaneous = 1;
  std::size_t run = 1;
  for (std::size_t i = 1; i < inst.size(); ++i) {
    run = (inst[i].release == inst[i - 1].release) ? run + 1 : 1;
    max_simultaneous = std::max(max_simultaneous, run);
  }
  EXPECT_GE(max_simultaneous, 10u);
}

TEST(Workload, DiurnalRateVariesWithinPeriod) {
  WorkloadConfig config;
  config.n = 4000;
  config.arrival = ArrivalModel::kDiurnal;
  config.arrival_rate = 2.0;
  config.diurnal_period = 100.0;
  config.diurnal_amplitude = 0.9;
  config.seed = 17;
  const Instance inst = generate_workload(config);

  // Count arrivals in the peak half-period [0, 50) mod 100 (where the
  // sine is positive) vs. the trough half; the peak half must clearly win.
  std::size_t peak_half = 0;
  std::size_t trough_half = 0;
  for (const Job& j : inst.jobs()) {
    const double phase = std::fmod(j.release, 100.0);
    (phase < 50.0 ? peak_half : trough_half) += 1;
  }
  EXPECT_GT(peak_half, trough_half * 2);
}

TEST(Workload, DiurnalReleasesMonotone) {
  WorkloadConfig config;
  config.n = 500;
  config.arrival = ArrivalModel::kDiurnal;
  config.seed = 3;
  const Instance inst = generate_workload(config);
  for (std::size_t i = 1; i < inst.size(); ++i) {
    EXPECT_GE(inst[i].release, inst[i - 1].release);
  }
  EXPECT_TRUE(inst.validate(config.eps).ok);
}

TEST(Workload, DiurnalRejectsBadParameters) {
  WorkloadConfig config;
  config.arrival = ArrivalModel::kDiurnal;
  config.diurnal_amplitude = 1.0;  // would allow a zero/negative rate
  EXPECT_THROW(generate_workload(config), PreconditionError);
  config.diurnal_amplitude = 0.5;
  config.diurnal_period = 0.0;
  EXPECT_THROW(generate_workload(config), PreconditionError);
}

TEST(Workload, RejectsInvalidConfig) {
  WorkloadConfig config;
  config.n = 0;
  EXPECT_THROW(generate_workload(config), PreconditionError);
  config.n = 10;
  config.eps = 0.0;
  EXPECT_THROW(generate_workload(config), PreconditionError);
  config.eps = 0.1;
  config.size_min = 5.0;
  config.size_max = 1.0;
  EXPECT_THROW(generate_workload(config), PreconditionError);
}

TEST(Workload, NamedScenariosValidate) {
  for (double eps : {0.05, 0.5}) {
    const Instance cloud = generate_workload(scenario("cloud-burst", eps, 1));
    EXPECT_TRUE(cloud.validate(eps).ok);
    const Instance overload = generate_workload(scenario("overload", eps, 1));
    EXPECT_TRUE(overload.validate(eps).ok);
  }
}

TEST(Workload, ConfigToStringMentionsModels) {
  WorkloadConfig config;
  const std::string s = config.to_string();
  EXPECT_NE(s.find("poisson"), std::string::npos);
  EXPECT_NE(s.find("bounded-pareto"), std::string::npos);
}

/// Property sweep: the generated instance always satisfies the slack
/// condition (3) for its configured eps, whatever the model mix.
class WorkloadSlackSweep
    : public ::testing::TestWithParam<
          std::tuple<double, ArrivalModel, SizeModel, SlackModel,
                     std::uint64_t>> {};

TEST_P(WorkloadSlackSweep, SlackConditionHoldsByConstruction) {
  const auto [eps, arrival, size, slack, seed] = GetParam();
  WorkloadConfig config;
  config.n = 250;
  config.eps = eps;
  config.arrival = arrival;
  config.size = size;
  config.slack = slack;
  config.seed = seed;
  const Instance inst = generate_workload(config);
  EXPECT_TRUE(inst.validate(eps).ok);
  EXPECT_GE(inst.min_slack(), eps - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WorkloadSlackSweep,
    ::testing::Combine(
        ::testing::Values(0.01, 0.3, 1.0),
        ::testing::Values(ArrivalModel::kPoisson, ArrivalModel::kUniform,
                          ArrivalModel::kBursty),
        ::testing::Values(SizeModel::kUniform, SizeModel::kBoundedPareto),
        ::testing::Values(SlackModel::kTight, SlackModel::kUniformFactor,
                          SlackModel::kMixed),
        ::testing::Values(1, 99)));

// ---------- trace I/O ----------

TEST(TraceIo, RoundTripsExactly) {
  WorkloadConfig config;
  config.n = 150;
  config.seed = 8;
  const Instance original = generate_workload(config);

  std::ostringstream out;
  write_trace(out, original);
  std::istringstream in(out.str());
  const Instance loaded = read_trace(in);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i], original[i]) << "row " << i;
  }
}

TEST(TraceIo, RejectsBadHeader) {
  std::istringstream in("nope,release,proc,deadline\n1,0,1,2\n");
  EXPECT_THROW(read_trace(in), PreconditionError);
}

TEST(TraceIo, RejectsWrongArity) {
  std::istringstream in("id,release,proc,deadline\n1,0,1\n");
  EXPECT_THROW(read_trace(in), PreconditionError);
}

TEST(TraceIo, RejectsNonNumericCells) {
  std::istringstream in("id,release,proc,deadline\n1,zero,1,2\n");
  EXPECT_THROW(read_trace(in), PreconditionError);
}

TEST(TraceIo, FileRoundTrip) {
  WorkloadConfig config;
  config.n = 30;
  const Instance original = generate_workload(config);
  const std::string path = ::testing::TempDir() + "/slacksched_trace.csv";
  write_trace_file(path, original);
  const Instance loaded = read_trace_file(path);
  ASSERT_EQ(loaded.size(), original.size());
  EXPECT_EQ(loaded[0], original[0]);
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(read_trace_file("/nonexistent/dir/trace.csv"),
               PreconditionError);
}

}  // namespace
}  // namespace slacksched
