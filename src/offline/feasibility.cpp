#include "offline/feasibility.hpp"

#include <algorithm>

#include "common/expects.hpp"
#include "common/time.hpp"
#include "offline/maxflow.hpp"

namespace slacksched {

namespace {

/// Builds the job-fragment -> interval network over the given event
/// points and checks whether the max flow saturates all fragment demand.
bool flow_feasible(const std::vector<RemainingJob>& fragments,
                   const std::vector<TimePoint>& release,
                   const std::vector<TimePoint>& events, int machines) {
  const std::size_t n = fragments.size();
  const std::size_t intervals = events.size() - 1;
  const std::size_t source = 0;
  const std::size_t sink = 1 + n + intervals;
  MaxFlow flow(sink + 1);

  double demand = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    flow.add_edge(source, 1 + i, fragments[i].remaining);
    demand += fragments[i].remaining;
  }
  for (std::size_t v = 0; v < intervals; ++v) {
    const Duration length = events[v + 1] - events[v];
    flow.add_edge(1 + n + v, sink, machines * length);
    for (std::size_t i = 0; i < n; ++i) {
      if (approx_ge(events[v], release[i]) &&
          approx_le(events[v + 1], fragments[i].deadline)) {
        flow.add_edge(1 + i, 1 + n + v, length);
      }
    }
  }
  return flow.max_flow(source, sink) >= demand - 1e-7 * (1.0 + demand);
}

}  // namespace

bool preemptive_migration_feasible(const std::vector<RemainingJob>& fragments,
                                   int machines, TimePoint now) {
  SLACKSCHED_EXPECTS(machines >= 1);
  if (fragments.empty()) return true;
  std::vector<TimePoint> events{now};
  std::vector<TimePoint> release(fragments.size(), now);
  for (const RemainingJob& f : fragments) {
    SLACKSCHED_EXPECTS(f.remaining >= 0.0);
    if (definitely_less(f.deadline, now + f.remaining)) return false;
    events.push_back(f.deadline);
  }
  std::sort(events.begin(), events.end());
  events.erase(
      std::unique(events.begin(), events.end(),
                  [](TimePoint a, TimePoint b) { return approx_eq(a, b); }),
      events.end());
  if (events.size() < 2) return true;  // zero remaining work
  return flow_feasible(fragments, release, events, machines);
}

bool preemptive_migration_feasible_jobs(const std::vector<Job>& jobs,
                                        int machines) {
  SLACKSCHED_EXPECTS(machines >= 1);
  if (jobs.empty()) return true;
  std::vector<RemainingJob> fragments;
  std::vector<TimePoint> release;
  std::vector<TimePoint> events;
  fragments.reserve(jobs.size());
  for (const Job& j : jobs) {
    fragments.push_back({j.id, j.proc, j.deadline});
    release.push_back(j.release);
    events.push_back(j.release);
    events.push_back(j.deadline);
  }
  std::sort(events.begin(), events.end());
  events.erase(
      std::unique(events.begin(), events.end(),
                  [](TimePoint a, TimePoint b) { return approx_eq(a, b); }),
      events.end());
  if (events.size() < 2) return true;
  return flow_feasible(fragments, release, events, machines);
}

}  // namespace slacksched
