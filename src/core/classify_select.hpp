// Corollary 1: a randomized O(log(1/eps))-competitive single-machine
// algorithm with immediate commitment, via the static-classification-and-
// select technique. The algorithm simulates Algorithm 1 on m virtual
// machines and executes, on the one real machine, exactly the jobs the
// simulation assigns to a uniformly chosen virtual machine. Every virtual
// machine's committed sequence is feasible on a single machine, so the
// commitments transfer verbatim; the expected accepted load is a 1/m
// fraction of the virtual parallel load, whose competitive ratio against
// the single-machine optimum is O(m * eps^{-1/m}) -> O(log 1/eps) for
// m ~ ln(1/eps).
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.hpp"
#include "core/threshold.hpp"
#include "sched/online.hpp"

namespace slacksched {

/// Configuration of the randomized single-machine algorithm.
struct ClassifySelectConfig {
  double eps = 0.1;
  /// Number of simulated machines; <= 0 selects the analysis choice
  /// max(1, round(ln(1/eps))).
  int virtual_machines = 0;
  std::uint64_t seed = 1;
};

/// Randomized single-machine scheduler (Corollary 1). machines() == 1.
class ClassifySelectScheduler final : public OnlineScheduler {
 public:
  explicit ClassifySelectScheduler(const ClassifySelectConfig& config);

  Decision on_arrival(const Job& job) override;
  [[nodiscard]] int machines() const override { return 1; }

  /// Re-seeds the virtual simulation and redraws the selected machine from
  /// the generator's continuing stream (deterministic across resets).
  void reset() override;

  [[nodiscard]] std::string name() const override;

  /// The virtual machine currently selected (for tests).
  [[nodiscard]] int selected_machine() const { return selected_; }

  /// Number of virtual machines in the simulation.
  [[nodiscard]] int virtual_machines() const {
    return virtual_sim_.machines();
  }

 private:
  ClassifySelectConfig config_;
  ThresholdScheduler virtual_sim_;
  Rng rng_;
  int selected_ = 0;
};

/// The analysis choice of the number of virtual machines for a given eps.
[[nodiscard]] int classify_select_default_machines(double eps);

}  // namespace slacksched
