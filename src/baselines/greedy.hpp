/// \file
/// Greedy admission baselines with immediate commitment: accept a job iff
/// some machine can still complete it on time, then allocate by a pluggable
/// policy. With best-fit allocation this is the classic greedy/list-
/// scheduling approach whose competitive ratio on parallel machines equals
/// the single-machine bound 2 + 1/eps (Kim & Chwa, cited in Fig. 1's
/// caption) — the natural comparison point for the Threshold algorithm.
///
/// Machine selection runs on the same incrementally sorted FrontierSet as
/// the Threshold hot path: best fit is a binary search for the most loaded
/// feasible machine, least-loaded is an O(1) feasibility check at the tail
/// of the maintained order, and first fit is an early-exit index scan. The
/// decision streams are pinned byte-identical to the seed linear-scan
/// implementation (baselines/greedy_reference.hpp).
#pragma once

#include <optional>
#include <string>

#include "core/frontier_set.hpp"
#include "models/speed_profile.hpp"
#include "sched/online.hpp"

namespace slacksched {

/// How a greedy scheduler picks among candidate machines.
enum class GreedyPolicy {
  kBestFit,      ///< most loaded machine that can finish the job on time
  kFirstFit,     ///< lowest-index candidate machine
  kLeastLoaded,  ///< least loaded candidate (earliest completion)
};

[[nodiscard]] std::string to_string(GreedyPolicy policy);

/// Accept-if-feasible greedy with the given allocation policy.
class GreedyScheduler final : public OnlineScheduler {
 public:
  GreedyScheduler(int machines, GreedyPolicy policy = GreedyPolicy::kBestFit);

  /// Related-machine variant: accept iff some machine can still complete
  /// the job given its speed (exec time p / s_i). A uniform profile takes
  /// the identical-machine code paths bit for bit.
  GreedyScheduler(SpeedProfile speeds,
                  GreedyPolicy policy = GreedyPolicy::kBestFit);

  Decision on_arrival(const Job& job) override;
  [[nodiscard]] int machines() const override;
  void reset() override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] const SpeedProfile* speed_profile() const override;

  /// Greedy's entire mutable state is the machine frontiers: restorable.
  bool restore_commitment(const Job& job, int machine,
                          TimePoint start) override;

  /// Elastic capacity: supported on identical machines. Greedy has no
  /// solved parameters to refresh, so a resize is purely a FrontierSet
  /// mutation.
  [[nodiscard]] bool supports_elastic() const override;
  [[nodiscard]] int active_machines() const override;
  int add_machine() override;
  bool begin_retire(int machine) override;
  [[nodiscard]] bool retire_drained(int machine, TimePoint now) const override;
  bool finish_retire(int machine) override;
  [[nodiscard]] bool is_retiring(int machine) const override;
  [[nodiscard]] int retire_candidate() const override;
  [[nodiscard]] int busy_machines(TimePoint now) const override;

 private:
  int machines_;
  GreedyPolicy policy_;
  /// Engaged only for a heterogeneous profile.
  std::optional<SpeedProfile> profile_;
  FrontierSet frontier_;
};

}  // namespace slacksched
