// Time model shared by every module.
//
// The paper works in continuous time; we represent instants and durations as
// IEEE doubles. All order comparisons that decide scheduling outcomes go
// through the tolerance helpers below so that quantities which are equal in
// exact arithmetic (e.g. a deadline that coincides with a threshold) are not
// split by rounding noise. The tolerance is absolute and far below the
// smallest meaningful gap used anywhere in the library (the adversary's beta,
// default 1e-6).
#pragma once

#include <cmath>
#include <limits>

namespace slacksched {

/// An instant on the simulated time line (seconds, arbitrary origin).
using TimePoint = double;
/// A length of simulated time (seconds).
using Duration = double;

/// Absolute tolerance for time comparisons across the library.
inline constexpr double kTimeEps = 1e-9;

/// Sentinel for "no deadline" / unbounded horizon.
inline constexpr TimePoint kTimeInfinity =
    std::numeric_limits<double>::infinity();

/// a == b up to tolerance.
[[nodiscard]] inline bool approx_eq(double a, double b,
                                    double tol = kTimeEps) {
  return std::fabs(a - b) <= tol;
}

/// a <= b up to tolerance (a may exceed b by at most tol).
[[nodiscard]] inline bool approx_le(double a, double b,
                                    double tol = kTimeEps) {
  return a <= b + tol;
}

/// a >= b up to tolerance.
[[nodiscard]] inline bool approx_ge(double a, double b,
                                    double tol = kTimeEps) {
  return a + tol >= b;
}

/// a < b by strictly more than tolerance.
[[nodiscard]] inline bool definitely_less(double a, double b,
                                          double tol = kTimeEps) {
  return a < b - tol;
}

/// a > b by strictly more than tolerance.
[[nodiscard]] inline bool definitely_greater(double a, double b,
                                             double tol = kTimeEps) {
  return a > b + tol;
}

}  // namespace slacksched
