#include "common/svg.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/expects.hpp"

namespace slacksched {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os.precision(2);
  os << std::fixed << v;
  return os.str();
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

SvgDocument::SvgDocument(double width, double height)
    : width_(width), height_(height) {
  SLACKSCHED_EXPECTS(width > 0.0 && height > 0.0);
}

void SvgDocument::line(double x1, double y1, double x2, double y2,
                       const std::string& color, double stroke_width,
                       bool dashed) {
  std::ostringstream os;
  os << "<line x1=\"" << fmt(x1) << "\" y1=\"" << fmt(y1) << "\" x2=\""
     << fmt(x2) << "\" y2=\"" << fmt(y2) << "\" stroke=\"" << color
     << "\" stroke-width=\"" << fmt(stroke_width) << "\"";
  if (dashed) os << " stroke-dasharray=\"4,3\"";
  os << "/>";
  elements_.push_back(os.str());
}

void SvgDocument::polyline(
    const std::vector<std::pair<double, double>>& points,
    const std::string& color, double stroke_width) {
  if (points.size() < 2) return;
  std::ostringstream os;
  os << "<polyline fill=\"none\" stroke=\"" << color << "\" stroke-width=\""
     << fmt(stroke_width) << "\" points=\"";
  for (const auto& [x, y] : points) {
    os << fmt(x) << ',' << fmt(y) << ' ';
  }
  os << "\"/>";
  elements_.push_back(os.str());
}

void SvgDocument::rect(double x, double y, double w, double h,
                       const std::string& fill, const std::string& stroke) {
  std::ostringstream os;
  os << "<rect x=\"" << fmt(x) << "\" y=\"" << fmt(y) << "\" width=\""
     << fmt(w) << "\" height=\"" << fmt(h) << "\" fill=\"" << fill
     << "\" stroke=\"" << stroke << "\"/>";
  elements_.push_back(os.str());
}

void SvgDocument::circle(double cx, double cy, double r,
                         const std::string& fill, const std::string& stroke) {
  std::ostringstream os;
  os << "<circle cx=\"" << fmt(cx) << "\" cy=\"" << fmt(cy) << "\" r=\""
     << fmt(r) << "\" fill=\"" << fill << "\" stroke=\"" << stroke << "\"/>";
  elements_.push_back(os.str());
}

void SvgDocument::text(double x, double y, const std::string& content,
                       double font_size, const std::string& color,
                       const std::string& anchor) {
  std::ostringstream os;
  os << "<text x=\"" << fmt(x) << "\" y=\"" << fmt(y) << "\" font-size=\""
     << fmt(font_size) << "\" fill=\"" << color
     << "\" font-family=\"sans-serif\" text-anchor=\"" << anchor << "\">"
     << escape(content) << "</text>";
  elements_.push_back(os.str());
}

std::string SvgDocument::str() const {
  std::ostringstream os;
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << fmt(width_)
     << "\" height=\"" << fmt(height_) << "\" viewBox=\"0 0 " << fmt(width_)
     << ' ' << fmt(height_) << "\">\n";
  os << "<rect x=\"0\" y=\"0\" width=\"" << fmt(width_) << "\" height=\""
     << fmt(height_) << "\" fill=\"#ffffff\"/>\n";
  for (const std::string& e : elements_) os << e << '\n';
  os << "</svg>\n";
  return os.str();
}

void SvgDocument::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw PreconditionError("cannot open svg output file " + path);
  out << str();
}

AxisScale::AxisScale(double data_lo, double data_hi, double pixel_lo,
                     double pixel_hi, bool log_scale)
    : lo_(data_lo),
      hi_(data_hi),
      pixel_lo_(pixel_lo),
      pixel_hi_(pixel_hi),
      log_(log_scale) {
  SLACKSCHED_EXPECTS(data_lo < data_hi);
  if (log_scale) {
    SLACKSCHED_EXPECTS(data_lo > 0.0);
    lo_ = std::log10(data_lo);
    hi_ = std::log10(data_hi);
  }
}

double AxisScale::operator()(double value) const {
  const double v = log_ ? std::log10(value) : value;
  const double frac = (v - lo_) / (hi_ - lo_);
  return pixel_lo_ + frac * (pixel_hi_ - pixel_lo_);
}

const std::vector<std::string>& default_palette() {
  static const std::vector<std::string> palette{
      "#4363d8", "#3cb44b", "#e6194b", "#911eb4",
      "#f58231", "#4699b3", "#808000", "#000075"};
  return palette;
}

}  // namespace slacksched
