#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace slacksched {
namespace {

TEST(Histogram, LinearBinsCountCorrectly) {
  Histogram h = Histogram::linear(0.0, 10.0, 5);
  ASSERT_EQ(h.bin_count(), 5u);
  h.add(1.0);   // bin 0 [0, 2)
  h.add(1.9);   // bin 0
  h.add(2.0);   // bin 1 [2, 4)
  h.add(9.99);  // bin 4 [8, 10)
  EXPECT_EQ(h.count_in_bin(0), 2u);
  EXPECT_EQ(h.count_in_bin(1), 1u);
  EXPECT_EQ(h.count_in_bin(4), 1u);
  EXPECT_EQ(h.total_count(), 4u);
}

TEST(Histogram, BinRangesPartitionTheDomain) {
  Histogram h = Histogram::linear(-1.0, 1.0, 4);
  double prev_upper = -1.0;
  for (std::size_t bin = 0; bin < h.bin_count(); ++bin) {
    const auto [lo, hi] = h.bin_range(bin);
    EXPECT_DOUBLE_EQ(lo, prev_upper);
    EXPECT_LT(lo, hi);
    prev_upper = hi;
  }
  EXPECT_DOUBLE_EQ(prev_upper, 1.0);
}

TEST(Histogram, OutOfRangeValuesClampIntoEndBins) {
  Histogram h = Histogram::linear(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  h.add(10.0);  // exactly the upper edge clamps into the last bin
  EXPECT_EQ(h.count_in_bin(0), 1u);
  EXPECT_EQ(h.count_in_bin(4), 2u);
}

TEST(Histogram, LogBinsAreGeometric) {
  Histogram h = Histogram::logarithmic(1.0, 1000.0, 3);
  const auto [lo0, hi0] = h.bin_range(0);
  const auto [lo1, hi1] = h.bin_range(1);
  EXPECT_NEAR(hi0, 10.0, 1e-9);
  EXPECT_NEAR(hi1, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(lo0, 1.0);
  EXPECT_DOUBLE_EQ(lo1, hi0);
}

TEST(Histogram, UniformSamplesSpreadEvenly) {
  Histogram h = Histogram::linear(0.0, 1.0, 10);
  Rng rng(4);
  const int n = 100000;
  for (int i = 0; i < n; ++i) h.add(rng.uniform01());
  for (std::size_t bin = 0; bin < h.bin_count(); ++bin) {
    EXPECT_NEAR(static_cast<double>(h.count_in_bin(bin)) / n, 0.1, 0.01);
  }
}

TEST(Histogram, PrintRendersBarsAndTotal) {
  Histogram h = Histogram::linear(0.0, 2.0, 2);
  h.add(0.5);
  h.add(0.6);
  h.add(1.5);
  std::ostringstream out;
  h.print(out, 20);
  const std::string rendered = out.str();
  EXPECT_NE(rendered.find('#'), std::string::npos);
  EXPECT_NE(rendered.find("total: 3"), std::string::npos);
}

TEST(Histogram, EmptyPrintDoesNotDivideByZero) {
  Histogram h = Histogram::linear(0.0, 1.0, 3);
  std::ostringstream out;
  h.print(out);
  EXPECT_NE(out.str().find("total: 0"), std::string::npos);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram::linear(1.0, 1.0, 3), PreconditionError);
  EXPECT_THROW(Histogram::linear(0.0, 1.0, 0), PreconditionError);
  EXPECT_THROW(Histogram::logarithmic(0.0, 1.0, 3), PreconditionError);
  EXPECT_THROW(Histogram::logarithmic(2.0, 1.0, 3), PreconditionError);
}

TEST(Histogram, QueriesRejectBadBin) {
  Histogram h = Histogram::linear(0.0, 1.0, 2);
  EXPECT_THROW((void)h.count_in_bin(2), PreconditionError);
  EXPECT_THROW((void)h.bin_range(2), PreconditionError);
}

}  // namespace
}  // namespace slacksched
