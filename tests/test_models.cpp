// Unit tests for the commitment-model subsystem (src/models/): speed
// profiles, commitment contracts, the speed-aware core containers, the
// contract-aware validator overload, the δ-commitment scheduler, and the
// model factory + gateway selector. The cross-model boundary equivalences
// (δ→0 vs. commit-on-arrival, τ=∞ vs. run_delayed_commit, uniform-speed
// bit-identity) live in test_model_equivalence.cpp.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/expects.hpp"
#include "core/frontier_set.hpp"
#include "models/commitment.hpp"
#include "models/delta_commit.hpp"
#include "models/model_factory.hpp"
#include "models/speed_profile.hpp"
#include "sched/engine.hpp"
#include "sched/validator.hpp"
#include "service/gateway.hpp"

namespace slacksched {
namespace {

Job make_job(JobId id, TimePoint r, Duration p, TimePoint d) {
  Job j;
  j.id = id;
  j.release = r;
  j.proc = p;
  j.deadline = d;
  return j;
}

// --- SpeedProfile ---------------------------------------------------------

TEST(SpeedProfile, UniformByCount) {
  const SpeedProfile profile(3);
  EXPECT_EQ(profile.machines(), 3);
  EXPECT_TRUE(profile.uniform());
  EXPECT_EQ(profile.speeds(), std::vector<double>(3, 1.0));
  EXPECT_DOUBLE_EQ(profile.exec_time(0, 7.5), 7.5);
  EXPECT_DOUBLE_EQ(profile.total_speed(), 3.0);
  EXPECT_EQ(profile.label(), "uniform");
}

TEST(SpeedProfile, AllUnitVectorIsNormalizedToUniform) {
  // The uniform-speed guarantee: an explicit all-1.0 vector must take the
  // exact identical-machine code paths (exec_time returns proc unchanged,
  // no division ever happens).
  const SpeedProfile profile(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_TRUE(profile.uniform());
  EXPECT_EQ(profile, SpeedProfile(3));
}

TEST(SpeedProfile, HeterogeneousExecTime) {
  const SpeedProfile profile(std::vector<double>{2.0, 1.0, 0.5});
  EXPECT_FALSE(profile.uniform());
  EXPECT_DOUBLE_EQ(profile.exec_time(0, 8.0), 4.0);
  EXPECT_DOUBLE_EQ(profile.exec_time(1, 8.0), 8.0);
  EXPECT_DOUBLE_EQ(profile.exec_time(2, 8.0), 16.0);
  EXPECT_DOUBLE_EQ(profile.total_speed(), 3.5);
}

TEST(SpeedProfile, TwoTierAndGeometricShapes) {
  const SpeedProfile two = SpeedProfile::two_tier(4, 1, 4.0);
  ASSERT_EQ(two.machines(), 4);
  EXPECT_DOUBLE_EQ(two.speed(0), 4.0);  // fast machines at the low indices
  EXPECT_DOUBLE_EQ(two.speed(3), 1.0);

  const SpeedProfile geo = SpeedProfile::geometric(3, 0.5);
  EXPECT_DOUBLE_EQ(geo.speed(0), 1.0);
  EXPECT_DOUBLE_EQ(geo.speed(1), 0.5);
  EXPECT_DOUBLE_EQ(geo.speed(2), 0.25);
  EXPECT_FALSE(geo.uniform());

  // Ratio 1 degenerates to identical machines — and must normalize so.
  EXPECT_TRUE(SpeedProfile::geometric(3, 1.0).uniform());
}

TEST(SpeedProfile, RejectsNonPositiveAndNonFiniteSpeeds) {
  EXPECT_THROW(SpeedProfile(std::vector<double>{1.0, 0.0}),
               PreconditionError);
  EXPECT_THROW(SpeedProfile(std::vector<double>{-1.0}), PreconditionError);
  EXPECT_THROW(
      SpeedProfile(std::vector<double>{std::numeric_limits<double>::infinity()}),
      PreconditionError);
  EXPECT_THROW(SpeedProfile(std::vector<double>{}), PreconditionError);
  EXPECT_THROW(SpeedProfile(0), PreconditionError);
}

// --- CommitmentContract ---------------------------------------------------

TEST(CommitmentContract, CommitDeadlinesPerModel) {
  const Job job = make_job(1, 10.0, 4.0, 30.0);  // latest start 26

  const CommitmentContract arrival{CommitModel::kOnArrival, 0.0};
  EXPECT_DOUBLE_EQ(arrival.commit_deadline(job), 10.0);

  const CommitmentContract delta{CommitModel::kDelta, 2.0};
  EXPECT_DOUBLE_EQ(delta.commit_deadline(job), 18.0);  // r + 2p = 18 < 26

  // A large δ is clamped by the latest start: τ never exceeds d − p.
  const CommitmentContract big_delta{CommitModel::kDelta, 100.0};
  EXPECT_DOUBLE_EQ(big_delta.commit_deadline(job), 26.0);

  const CommitmentContract admission{CommitModel::kOnAdmission, 0.0};
  EXPECT_DOUBLE_EQ(admission.commit_deadline(job), 26.0);
}

TEST(CommitmentContract, LabelRoundTrip) {
  for (const CommitModel model :
       {CommitModel::kOnArrival, CommitModel::kDelta,
        CommitModel::kOnAdmission}) {
    EXPECT_EQ(commit_model_from_label(to_string(model)), model);
  }
  EXPECT_FALSE(commit_model_from_label("nonsense").has_value());
}

// --- Speed-aware FrontierSet ----------------------------------------------

TEST(FrontierSetSpeeds, AllUnitVectorKeepsUniformPath) {
  FrontierSet frontier(2, std::vector<double>{1.0, 1.0});
  EXPECT_TRUE(frontier.uniform_speeds());
  EXPECT_DOUBLE_EQ(frontier.exec_time(1, 3.0), 3.0);
}

TEST(FrontierSetSpeeds, BestFitUsesMachineSpecificExecTime) {
  // Machine 0 is 4x fast, machine 1 is slow. A tight job only fits the
  // fast machine even though both are idle.
  FrontierSet frontier(2, std::vector<double>{4.0, 1.0});
  EXPECT_FALSE(frontier.uniform_speeds());
  EXPECT_DOUBLE_EQ(frontier.exec_time(0, 8.0), 2.0);
  const int machine = frontier.best_fit(/*now=*/0.0, /*proc=*/8.0,
                                        /*deadline=*/3.0);
  EXPECT_EQ(machine, 0);
  frontier.update(0, 2.0);

  // Now the fast machine is busy until 2; a job with deadline 4 and proc 4
  // fits neither the busy fast machine (2 + 1 > 4 is fine: 3 <= 4, fits)
  // — best-fit prefers the *most loaded* feasible machine.
  const int second = frontier.best_fit(0.0, 4.0, 4.0);
  EXPECT_EQ(second, 0);  // frontier 2 + exec 1 = 3 <= 4; machine 1 needs 4
}

TEST(FrontierSetSpeeds, NoFeasibleMachineReturnsMinusOne) {
  FrontierSet frontier(2, std::vector<double>{0.5, 0.5});
  // exec time 2/0.5 = 4 > deadline 3 on both machines.
  EXPECT_EQ(frontier.best_fit(0.0, 2.0, 3.0), -1);
  EXPECT_EQ(frontier.least_loaded_fit(0.0, 2.0, 3.0), -1);
}

TEST(FrontierSetSpeeds, LeastLoadedFitPrefersLightestFeasible) {
  FrontierSet frontier(3, std::vector<double>{1.0, 1.0, 2.0});
  frontier.update(0, 1.0);
  frontier.update(2, 0.5);
  // All feasible for a loose job; machine 1 has zero load.
  EXPECT_EQ(frontier.least_loaded_fit(0.0, 1.0, 100.0), 1);
}

// --- Speed-aware Schedule + validator -------------------------------------

TEST(ScheduleSpeeds, CommitUsesExecTime) {
  Schedule schedule(2, std::vector<double>{2.0, 1.0});
  EXPECT_FALSE(schedule.uniform_speeds());
  const Job job = make_job(1, 0.0, 6.0, 10.0);
  schedule.commit(job, /*machine=*/0, /*start=*/0.0);
  const auto placement = schedule.find(1);
  ASSERT_TRUE(placement.has_value());
  EXPECT_DOUBLE_EQ(placement->duration, 3.0);  // 6 / 2.0
  EXPECT_DOUBLE_EQ(placement->completion(), 3.0);
  EXPECT_DOUBLE_EQ(schedule.makespan(), 3.0);
  // The objective counts processing volume, not occupancy.
  EXPECT_DOUBLE_EQ(schedule.total_volume(), 6.0);
}

TEST(ScheduleSpeeds, ValidatorChecksSpeedAwareCompletion) {
  Schedule schedule(1, std::vector<double>{0.5});
  // proc 4 on a 0.5-speed machine occupies 8 time units: misses deadline 6.
  const Job job = make_job(1, 0.0, 4.0, 6.0);
  const std::string violation =
      validate_commitment(schedule, job, Decision::accept(0, 0.0));
  EXPECT_FALSE(violation.empty());

  // The same decision is fine with deadline 9.
  const Job loose = make_job(2, 0.0, 4.0, 9.0);
  EXPECT_TRUE(
      validate_commitment(schedule, loose, Decision::accept(0, 0.0)).empty());
}

TEST(ContractValidator, DeferredDecisionIsNeverACommitment) {
  const Schedule schedule(1);
  const Job job = make_job(1, 0.0, 1.0, 5.0);
  const CommitmentContract contract{CommitModel::kDelta, 1.0};
  EXPECT_FALSE(validate_commitment(schedule, job, Decision::defer(),
                                   /*decided_at=*/0.0, contract)
                   .empty());
}

TEST(ContractValidator, DeltaContractBoundsDecisionTime) {
  const Schedule schedule(2);
  const Job job = make_job(1, 0.0, 2.0, 10.0);  // τ = min(0 + 1·2, 8) = 2
  const CommitmentContract contract{CommitModel::kDelta, 1.0};

  // In-window decision, start after decision: legal.
  EXPECT_TRUE(validate_commitment(schedule, job, Decision::accept(0, 3.0),
                                  /*decided_at=*/2.0, contract)
                  .empty());
  // Decided after τ: the deferral budget is exhausted.
  EXPECT_FALSE(validate_commitment(schedule, job, Decision::accept(0, 3.0),
                                   /*decided_at=*/2.5, contract)
                   .empty());
  // Decided before release: the job did not exist yet.
  EXPECT_FALSE(validate_commitment(schedule, job, Decision::accept(0, 3.0),
                                   /*decided_at=*/-1.0, contract)
                   .empty());
  // Retroactive start (before the decision): never legal.
  EXPECT_FALSE(validate_commitment(schedule, job, Decision::accept(0, 1.0),
                                   /*decided_at=*/2.0, contract)
                   .empty());
  // Rejections are always legal, whenever they land.
  EXPECT_TRUE(validate_commitment(schedule, job, Decision::reject(),
                                  /*decided_at=*/9.0, contract)
                  .empty());
}

TEST(ContractValidator, OnAdmissionPinsStartToDecisionTime) {
  const Schedule schedule(1);
  const Job job = make_job(1, 0.0, 2.0, 10.0);
  const CommitmentContract contract{CommitModel::kOnAdmission, 0.0};
  EXPECT_TRUE(validate_commitment(schedule, job, Decision::accept(0, 4.0),
                                  /*decided_at=*/4.0, contract)
                  .empty());
  // Committing now for a later start is the δ model, not on-admission.
  EXPECT_FALSE(validate_commitment(schedule, job, Decision::accept(0, 5.0),
                                   /*decided_at=*/4.0, contract)
                   .empty());
}

// --- DeltaCommitScheduler through the engine ------------------------------

TEST(DeltaCommit, DefersOnArrivalAndResolvesThroughTheEngine) {
  DeltaCommitScheduler scheduler(/*delta=*/0.5, /*machines=*/1);
  const Instance inst({make_job(1, 0.0, 2.0, 5.0)});
  const RunResult result = run_online(scheduler, inst, true);
  EXPECT_TRUE(result.clean()) << result.commitment_violation;
  EXPECT_EQ(result.metrics.submitted, 1u);
  EXPECT_EQ(result.metrics.accepted, 1u);
  ASSERT_EQ(result.decisions.size(), 1u);
  EXPECT_TRUE(result.decisions[0].decision.accepted);
  EXPECT_TRUE(validate_schedule(inst, result.schedule).ok);
}

TEST(DeltaCommit, AcceptsEverythingTheGreedyFrontierCanPlace) {
  // Machine busy until 4 with job 1; job 2 still fits after it. Decisions
  // must land by each job's τ and come out clean under the δ contract.
  DeltaCommitScheduler scheduler(/*delta=*/2.0, /*machines=*/1);
  const Instance inst(
      {make_job(1, 0.0, 4.0, 10.0), make_job(2, 0.0, 3.0, 8.0)});
  const RunResult result = run_online(scheduler, inst, true);
  EXPECT_TRUE(result.clean()) << result.commitment_violation;
  EXPECT_EQ(result.metrics.accepted, 2u);
  EXPECT_TRUE(validate_schedule(inst, result.schedule).ok);
}

TEST(DeltaCommit, ExpiredPendingJobIsRejectedNotDropped) {
  // Job 2's latest start passes while it waits: the resolution stream must
  // contain an explicit binding rejection (metrics count it).
  DeltaCommitConfig config;
  config.machines = 1;
  config.commit_on_admission = true;
  DeltaCommitScheduler scheduler(config);
  const Instance inst(
      {make_job(1, 0.0, 4.0, 10.0), make_job(2, 0.5, 3.0, 4.0)});
  const RunResult result = run_online(scheduler, inst, true);
  EXPECT_TRUE(result.clean()) << result.commitment_violation;
  EXPECT_EQ(result.metrics.accepted, 1u);
  EXPECT_EQ(result.metrics.rejected, 1u);
  EXPECT_DOUBLE_EQ(result.metrics.rejected_volume, 3.0);
}

TEST(DeltaCommit, RelatedMachinesUseSpeedAwareOccupancy) {
  DeltaCommitConfig config;
  config.machines = 2;
  config.delta = 0.0;
  config.speeds = {4.0, 1.0};
  DeltaCommitScheduler scheduler(config);
  ASSERT_NE(scheduler.speed_profile(), nullptr);
  // proc 8, deadline 3: only the speed-4 machine (exec 2) can serve it.
  const Instance inst({make_job(1, 0.0, 8.0, 3.0)});
  const RunResult result = run_online(scheduler, inst, true);
  EXPECT_TRUE(result.clean()) << result.commitment_violation;
  EXPECT_EQ(result.metrics.accepted, 1u);
  const auto placement = result.schedule.find(1);
  ASSERT_TRUE(placement.has_value());
  EXPECT_EQ(placement->machine, 0);
  EXPECT_DOUBLE_EQ(placement->duration, 2.0);
  EXPECT_FALSE(result.schedule.uniform_speeds());
}

TEST(DeltaCommit, UniformProfileReportsNoSpeedProfile) {
  // All-unit speeds must keep the engine on the identical-machine Schedule.
  DeltaCommitConfig config;
  config.machines = 2;
  config.speeds = {1.0, 1.0};
  DeltaCommitScheduler scheduler(config);
  EXPECT_EQ(scheduler.speed_profile(), nullptr);
}

TEST(DeltaCommit, NameEncodesTheModelPoint) {
  DeltaCommitScheduler delta(0.25, 2);
  EXPECT_NE(delta.name().find("0.25"), std::string::npos);
  DeltaCommitConfig config;
  config.machines = 2;
  config.commit_on_admission = true;
  DeltaCommitScheduler admission(config);
  EXPECT_NE(admission.name().find("admission"), std::string::npos);
}

// --- Model factory + gateway selector -------------------------------------

TEST(ModelFactory, BuildsEveryModel) {
  ModelConfig config;
  config.machines = 2;

  config.model = CommitModel::kOnArrival;
  config.arrival = ArrivalPolicy::kThreshold;
  config.eps = 0.25;
  EXPECT_NE(make_scheduler(config)->name().find("Threshold"),
            std::string::npos);

  config.arrival = ArrivalPolicy::kGreedyBestFit;
  EXPECT_NE(make_scheduler(config)->name().find("Greedy"), std::string::npos);

  config.model = CommitModel::kDelta;
  config.delta = 0.5;
  auto delta = make_scheduler(config);
  EXPECT_EQ(delta->commitment_contract().model, CommitModel::kDelta);
  EXPECT_DOUBLE_EQ(delta->commitment_contract().delta, 0.5);

  config.model = CommitModel::kOnAdmission;
  auto admission = make_scheduler(config);
  EXPECT_EQ(admission->commitment_contract().model,
            CommitModel::kOnAdmission);
}

TEST(ModelFactory, ValidatesItsConfig) {
  ModelConfig config;
  config.machines = 0;
  EXPECT_FALSE(config.validate().empty());
  EXPECT_THROW((void)make_scheduler(config), PreconditionError);

  config.machines = 2;
  config.speeds = {1.0};  // wrong arity
  EXPECT_FALSE(config.validate().empty());

  config.speeds.clear();
  config.model = CommitModel::kOnArrival;
  config.arrival = ArrivalPolicy::kThreshold;
  config.eps = 0.0;
  EXPECT_FALSE(config.validate().empty());

  config.eps = 0.1;
  config.model = CommitModel::kDelta;
  config.delta = -1.0;
  EXPECT_FALSE(config.validate().empty());
}

TEST(GatewaySelector, RunsAModelBehindTheShards) {
  GatewayConfig config;
  config.shards = 2;
  config.model = ModelConfig{};
  config.model->model = CommitModel::kDelta;
  config.model->delta = 0.5;
  config.model->machines = 2;

  AdmissionGateway gateway(config);
  for (int i = 0; i < 20; ++i) {
    const Job job = make_job(i + 1, static_cast<double>(i), 1.0,
                             static_cast<double>(i) + 10.0);
    EXPECT_EQ(gateway.submit(job), Outcome::kEnqueued);
  }
  const GatewayResult result = gateway.finish();
  EXPECT_TRUE(result.clean()) << result.first_violation();
  EXPECT_EQ(result.merged.submitted, 20u);
  EXPECT_EQ(result.merged.accepted + result.merged.rejected, 20u);
  ASSERT_EQ(result.shards.size(), 2u);
}

TEST(GatewaySelector, ValidateSurfacesModelProblems) {
  GatewayConfig config;
  config.model = ModelConfig{};
  config.model->machines = 0;
  const std::vector<std::string> errors = config.validate();
  ASSERT_FALSE(errors.empty());
  EXPECT_NE(errors.front().find("model"), std::string::npos);
}

}  // namespace
}  // namespace slacksched
