// Tiny command-line flag parser shared by examples and benches.
// Supports --key=value and --flag (boolean) forms; anything else is a
// positional argument. Unknown flags are reported so typos do not silently
// change an experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace slacksched {

/// Parsed command line with typed accessors and defaults.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// Keys that were parsed from the command line (for unknown-flag checks).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace slacksched
