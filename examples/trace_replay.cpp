// Trace replay CLI — run any shipped admission policy over a CSV trace.
//
// This is the "operations" entry point a downstream user wires into their
// own pipeline: generate or capture a trace once, replay it under
// different policies/machine counts, and diff the decisions.
//
// Usage:
//   trace_replay --generate=trace.csv [--n=1000] [--eps=0.1] [--seed=1]
//   trace_replay --trace=trace.csv --algo=threshold [--machines=4]
//                [--eps=0.1] [--decisions=out.csv] [--report-intervals]
//
// algo: threshold | greedy | least-loaded | classify-select | random
// Run without flags for a self-contained demo (generates + replays).
#include <fstream>
#include <iostream>
#include <memory>

#include "baselines/greedy.hpp"
#include "baselines/random_admission.hpp"
#include "common/cli.hpp"
#include "common/csv.hpp"
#include "sched/decision_io.hpp"
#include "common/table.hpp"
#include "core/classify_select.hpp"
#include "core/threshold.hpp"
#include "offline/upper_bound.hpp"
#include "sched/engine.hpp"
#include "sched/timeline.hpp"
#include "sched/validator.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace {

using namespace slacksched;

std::unique_ptr<OnlineScheduler> make_algorithm(const std::string& algo,
                                                double eps, int machines,
                                                std::uint64_t seed) {
  if (algo == "threshold") {
    return std::make_unique<ThresholdScheduler>(eps, machines);
  }
  if (algo == "greedy") {
    return std::make_unique<GreedyScheduler>(machines, GreedyPolicy::kBestFit);
  }
  if (algo == "least-loaded") {
    return std::make_unique<GreedyScheduler>(machines,
                                             GreedyPolicy::kLeastLoaded);
  }
  if (algo == "classify-select") {
    ClassifySelectConfig config;
    config.eps = eps;
    config.seed = seed;
    return std::make_unique<ClassifySelectScheduler>(config);
  }
  if (algo == "random") {
    return std::make_unique<RandomAdmissionScheduler>(machines, 0.5, seed);
  }
  throw PreconditionError("unknown --algo=" + algo +
                          " (threshold|greedy|least-loaded|classify-select|"
                          "random)");
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  // --- generation mode ---
  if (args.has("generate")) {
    WorkloadConfig config;
    config.n = static_cast<std::size_t>(args.get_int("n", 1000));
    config.eps = args.get_double("eps", 0.1);
    config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    const Instance instance = generate_workload(config);
    write_trace_file(args.get_string("generate", ""), instance);
    std::cout << "wrote " << instance.size() << " jobs (eps >= "
              << instance.min_slack() << ") to "
              << args.get_string("generate", "") << "\n";
    return 0;
  }

  // --- replay mode (self-generating demo when no trace given) ---
  Instance instance;
  if (args.has("trace")) {
    instance = read_trace_file(args.get_string("trace", ""));
  } else {
    std::cout << "(no --trace given: replaying a generated demo trace)\n\n";
    WorkloadConfig config = scenario("cloud-burst", 0.1, 7);
    config.n = 1000;
    instance = generate_workload(config);
  }
  if (instance.empty()) {
    std::cerr << "empty trace\n";
    return 1;
  }

  const int machines = static_cast<int>(args.get_int("machines", 4));
  const double eps = args.get_double("eps", instance.min_slack());
  const std::string algo = args.get_string("algo", "threshold");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("seed", 1));

  const auto scheduler = make_algorithm(algo, eps, machines, seed);
  std::cout << "replaying " << instance.size() << " jobs under "
            << scheduler->name() << "\n\n";

  const RunResult result = run_online(*scheduler, instance);
  if (!result.clean()) {
    std::cerr << "COMMITMENT VIOLATION: " << result.commitment_violation
              << "\n";
    return 1;
  }
  const ValidationReport report = validate_schedule(instance, result.schedule);
  if (!report.ok) {
    std::cerr << report.to_string() << "\n";
    return 1;
  }

  const double ub = preemptive_fractional_upper_bound(instance, machines);
  Table summary({"metric", "value"});
  summary.add_row({"jobs accepted", std::to_string(result.metrics.accepted) +
                                        " / " +
                                        std::to_string(result.metrics.submitted)});
  summary.add_row({"accepted volume",
                   Table::format(result.metrics.accepted_volume, 2)});
  summary.add_row({"volume acceptance rate",
                   Table::format(result.metrics.volume_acceptance_rate(), 4)});
  summary.add_row({"fraction of fractional UB",
                   Table::format(result.metrics.accepted_volume / ub, 4)});
  summary.add_row(
      {"utilization", Table::format(utilization(result.schedule), 4)});
  summary.add_row({"makespan", Table::format(result.metrics.makespan, 2)});
  summary.add_row(
      {"certified ratio bound (no offline solver)",
       Table::format(certified_optimum_bound(result, machines).ratio_bound,
                     4)});
  summary.print(std::cout);

  if (args.get_bool("report-intervals", false)) {
    std::cout << "\ncovered intervals (where rejected demand existed):\n";
    Table intervals({"begin", "end", "rejected jobs", "rejected volume",
                     "online volume", "ratio bound"});
    for (const CoveredInterval& interval : covered_intervals(result)) {
      intervals.add_row({Table::format(interval.begin, 2),
                         Table::format(interval.end, 2),
                         std::to_string(interval.rejected_jobs),
                         Table::format(interval.rejected_volume, 2),
                         Table::format(interval.online_volume, 2),
                         Table::format(
                             interval.performance_ratio_bound(machines), 3)});
    }
    intervals.print(std::cout);
  }

  if (args.has("decisions")) {
    write_decisions_file(args.get_string("decisions", ""), result.decisions);
    std::cout << "\nwrote decisions to " << args.get_string("decisions", "")
              << "\n";
  }

  if (args.has("svg")) {
    render_timeline_svg(result, scheduler->name() + " timeline")
        .save(args.get_string("svg", ""));
    std::cout << "wrote timeline to " << args.get_string("svg", "") << "\n";
  }
  return 0;
}
