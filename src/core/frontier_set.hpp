/// \file
/// Incrementally maintained sorted machine frontiers — the data structure
/// behind the O(log m) admission hot path.
///
/// Every immediate-commitment algorithm in this library tracks one number
/// per machine: the absolute completion time of its last committed job (the
/// "frontier"). The outstanding load at time `now` is max(0, frontier - now),
/// a non-decreasing function of the frontier, so the *relative* order of the
/// machines by load is time-invariant: sorting the frontiers once descending
/// sorts the loads descending for every `now`. A commitment moves exactly
/// one machine to a new frontier, which re-sorts with a single binary-search
/// find plus one std::rotate of the displaced range — O(log m) compare cost
/// and an amortized-cheap contiguous memmove — instead of the O(m log m)
/// full sort the naive arrival loop pays.
///
/// Order and tie-breaking: machines are kept sorted by (frontier descending,
/// machine index ascending). The secondary index order reproduces, by
/// construction, the lowest-index-wins tie-breaking of a naive ascending
/// scan with a strict comparison, which the equivalence tests pin
/// decision-for-decision against the seed implementations.
///
/// Zero-load machines need one extra structure: all machines with
/// frontier <= now carry load exactly 0, and a naive scan picks the lowest
/// *index* among them regardless of their (stale) frontiers. A lazily
/// advanced idle bitset answers that min-index query in O(m/64) words
/// without disturbing the sorted order.
///
/// Related machines: an optional per-machine speed vector generalizes the
/// fit queries to execution times p/s_i. Heterogeneous speeds break the
/// monotonicity the binary searches rely on (a lighter-loaded machine can be
/// slower and therefore infeasible), so the non-uniform fit paths fall back
/// to the naive ascending index scan with strict comparisons — the exact
/// semantics the uniform fast paths are pinned against. A FrontierSet built
/// without speeds (or with every speed exactly 1) takes the original code
/// paths untouched, bit for bit.
///
/// Elastic capacity (policy/capacity_controller.hpp): each machine carries
/// an active / retiring / retired state. Only *active* machines live in the
/// sorted order and answer fit queries; a retiring machine keeps its
/// frontier (its committed work still drains) but receives no new
/// commitments, and once drained it is marked retired and its index can be
/// reactivated by a later grow. Machine indices are never renumbered —
/// committed placements and WAL records keep referring to stable physical
/// indices across any resize sequence. A set that never resizes keeps
/// active == size() and takes the original code paths bit for bit. The
/// elastic mutations require uniform speeds (a grown machine has no
/// defined speed otherwise) and may allocate; every query path stays
/// allocation-free.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace slacksched {

/// Sorted multiset of machine frontiers with O(log m) point updates and
/// the position/feasibility queries Algorithm 1 and the greedy baselines
/// need. All storage is preallocated at construction; no member function
/// allocates, so the arrival hot path built on top is allocation-free.
class FrontierSet {
 public:
  explicit FrontierSet(int machines);

  /// Related-machine variant: machine i runs at speed `speeds[i]` > 0, so a
  /// job of processing requirement p occupies it for p / speeds[i]. An
  /// empty vector means identical machines and is bit-identical to the
  /// speed-less constructor.
  FrontierSet(int machines, std::vector<double> speeds);

  /// Returns every machine to frontier 0 (the empty system) and every
  /// retiring/retired machine to active.
  void reset();

  /// Number of physical machines (grows with add_machine, never shrinks —
  /// a retired machine keeps its index reserved for reactivation).
  [[nodiscard]] int size() const { return machines_; }

  /// Number of active machines — the ones fit queries may place on. Equal
  /// to size() until the first elastic mutation.
  [[nodiscard]] int active_machines() const { return active_; }

  /// True iff the set was built without speeds (or with all speeds exactly
  /// 1.0 normalized away) — the identical-machine fast paths apply.
  [[nodiscard]] bool uniform_speeds() const { return speed_.empty(); }

  /// Speed of a physical machine (1.0 when uniform).
  [[nodiscard]] double speed(int machine) const;

  /// Execution time of a job with processing requirement `proc` on
  /// `machine`: p / s_i, returned as exactly `proc` when uniform.
  [[nodiscard]] Duration exec_time(int machine, Duration proc) const {
    if (speed_.empty()) return proc;
    return proc / speed_[static_cast<std::size_t>(machine)];
  }

  /// Frontier (absolute completion time of the last commitment) of a
  /// physical machine.
  [[nodiscard]] TimePoint frontier(int machine) const;

  /// Machine occupying sorted position `position` (0 = largest frontier;
  /// ties ordered by ascending machine index).
  [[nodiscard]] int machine_at(int position) const;

  /// Frontier at sorted position `position`.
  [[nodiscard]] TimePoint frontier_at(int position) const;

  /// Current sorted position of a physical machine; -1 while the machine
  /// is retiring or retired (it is out of the sorted order).
  [[nodiscard]] int position_of(int machine) const;

  /// Outstanding load of a physical machine at time `now`.
  [[nodiscard]] Duration load(int machine, TimePoint now) const;

  /// Outstanding load at sorted position `position` (loads are
  /// non-increasing in the position for every `now`).
  [[nodiscard]] Duration load_at(int position, TimePoint now) const;

  /// Moves one machine to a new frontier and restores sorted order with a
  /// binary-search find and a single rotate of the displaced range.
  void update(int machine, TimePoint frontier);

  /// First sorted position whose frontier is <= `value` (== size() when
  /// every frontier is larger). The suffix from this position holds the
  /// machines that are idle at time `value`.
  [[nodiscard]] int first_position_not_above(TimePoint value) const;

  /// Best-fit allocation: the machine a naive ascending scan with strict
  /// `load > best` comparison would pick — the most loaded machine that
  /// still completes a job of length `proc` released at `now` by
  /// `deadline`, lowest machine index among exact load ties. Returns -1
  /// when no machine is feasible. Uniform speeds: O(log m) binary search
  /// (feasibility is monotone in the sorted position). Heterogeneous
  /// speeds: O(m) index scan with feasibility now + load + p/s_i <=
  /// deadline. (Non-const: advances the idle bitset.)
  [[nodiscard]] int best_fit(TimePoint now, Duration proc, TimePoint deadline);

  /// Least-loaded allocation: the machine a naive ascending scan with
  /// strict `load < best` comparison would pick. Returns -1 when no
  /// machine is feasible. Uniform speeds: O(1) feasibility check (the
  /// least loaded machine is feasible iff any machine is). Heterogeneous
  /// speeds: O(m) index scan.
  [[nodiscard]] int least_loaded_fit(TimePoint now, Duration proc,
                                     TimePoint deadline);

  /// Lowest machine index among the machines idle at `now` (frontier <=
  /// now); -1 when every machine is busy. Amortized O(m/64): the idle
  /// bitset advances forward with `now` and only rebuilds on a backward
  /// query (the engine feeds non-decreasing release dates).
  [[nodiscard]] int min_idle_machine(TimePoint now);

  // --- elastic surface (policy/capacity_controller.hpp) ---

  /// True iff the machine is active (placeable).
  [[nodiscard]] bool is_active(int machine) const;

  /// True iff the machine is draining toward retirement.
  [[nodiscard]] bool is_retiring(int machine) const;

  /// Activates one machine and returns its index: the lowest-index retired
  /// machine when one exists (its frontier restarts at 0), else a brand-new
  /// physical machine appended after size()-1. Requires uniform speeds.
  /// May allocate (the only FrontierSet mutation that does).
  int add_machine();

  /// Marks an active machine retiring: it leaves the sorted order and the
  /// idle bitset, so no fit query can place new work on it, while its
  /// frontier keeps draining. Requires uniform speeds, at least two active
  /// machines, and the machine to be active.
  void begin_retire(int machine);

  /// True iff a retiring machine's frontier has fully drained at `now` —
  /// every commitment ever placed on it has completed, so retiring it
  /// breaks nothing.
  [[nodiscard]] bool retire_drained(int machine, TimePoint now) const;

  /// Completes a retirement (the caller has observed retire_drained). The
  /// machine becomes retired: frontier reset to 0, index parked for a
  /// future add_machine.
  void finish_retire(int machine);

  /// The machine begin_retire would drain fastest: the active machine at
  /// the last sorted position (minimum frontier; highest index among
  /// ties). The caller logs this exact index write-ahead, so a WAL replay
  /// retires the same machine deterministically.
  [[nodiscard]] int retire_candidate() const;

 private:
  /// Lifecycle of a physical machine under elastic capacity.
  enum class MachineState : std::uint8_t { kActive, kRetiring, kRetired };

  /// State of a machine; kActive when the set never resized (state_ is
  /// engaged lazily by the first elastic mutation).
  [[nodiscard]] MachineState state_of(int machine) const {
    if (state_.empty()) return MachineState::kActive;
    return static_cast<MachineState>(state_[static_cast<std::size_t>(machine)]);
  }

  /// Engages per-machine state tracking (first elastic mutation).
  void ensure_states();

  /// Inserts an active machine with frontier 0 into the sorted order.
  void insert_into_order(int machine);
  /// Strict weak order of the maintained sequence: larger frontier first,
  /// ties by ascending machine index.
  [[nodiscard]] bool ordered_before(int a, int b) const;

  /// First sorted position whose frontier is strictly below `value`.
  [[nodiscard]] int first_position_below(TimePoint value) const;

  /// Lowest machine index among machines whose load at `now` equals the
  /// load at sorted position `position` (which must be the first position
  /// of its equal-frontier run). Handles the zero-load case through the
  /// idle bitset and the (floating-point corner) case of equal loads
  /// across distinct frontiers by jumping run heads.
  [[nodiscard]] int min_machine_with_load_at(int position, TimePoint now);

  void set_idle_bit(int machine, bool idle);
  void rebuild_idle_bits(TimePoint now);
  void advance_idle_watermark(TimePoint now);

  /// Naive ascending index scans used when speeds are heterogeneous and
  /// the sorted-order binary searches lose their monotonicity.
  [[nodiscard]] int best_fit_scan(TimePoint now, Duration proc,
                                  TimePoint deadline) const;
  [[nodiscard]] int least_loaded_fit_scan(TimePoint now, Duration proc,
                                          TimePoint deadline) const;

  int machines_;
  /// Active machines = the first `active_` entries of order_. Equals
  /// machines_ until the first elastic mutation.
  int active_;
  /// Per-machine speeds; empty means identical machines (all s_i = 1).
  std::vector<double> speed_;
  std::vector<TimePoint> frontier_;    ///< per physical machine
  std::vector<std::int32_t> order_;    ///< active machine ids, sorted
  std::vector<std::int32_t> position_; ///< inverse of order_; -1 if inactive
  /// Per-machine MachineState; empty until the first elastic mutation
  /// (empty == all active), so a never-resized set stays bit-identical.
  std::vector<std::uint8_t> state_;
  /// Bit i set iff machine i is active and frontier_[i] <= idle_watermark_.
  std::vector<std::uint64_t> idle_bits_;
  TimePoint idle_watermark_ = 0.0;
};

}  // namespace slacksched
