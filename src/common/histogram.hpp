// Fixed-bin histograms for console reports and metrics snapshots
// (job-size mixes, ratio distributions, admit latencies). Linear or
// log-spaced bins, rendered as horizontal bars or exported to Prometheus
// text format (service/metrics_exporter.hpp).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace slacksched {

/// A histogram with fixed bin edges chosen at construction.
///
/// Bin i covers [edge_i, edge_{i+1}). Samples outside the covered range
/// are NOT folded into the edge bins: they are tracked in explicit
/// underflow/overflow counters (folding them in silently distorts the
/// distribution's tails — a dashboard cannot tell a real 1 s latency
/// from a clamped 100 s one). NaN samples are counted separately and
/// never enter a bin: NaN would otherwise slip through clamping
/// comparisons and land in an arbitrary bin.
class Histogram {
 public:
  /// Linear bins over [lo, hi].
  static Histogram linear(double lo, double hi, std::size_t bins);

  /// Log-spaced bins over [lo, hi] (lo > 0).
  static Histogram logarithmic(double lo, double hi, std::size_t bins);

  void add(double value);

  /// Adds `count` observations of `value` at once (bulk merge).
  void add(double value, std::size_t count);

  /// Adds `count` observations directly to bin `bin` — the exact-copy
  /// path for rebuilding a histogram from externally accumulated bin
  /// counters (e.g. MetricsRegistry's atomic latency bins) without the
  /// lossy value->bin float round trip.
  void add_to_bin(std::size_t bin, std::size_t count);

  /// In-range observations only (excludes underflow/overflow/NaN).
  [[nodiscard]] std::size_t total_count() const { return total_; }
  /// Samples below the lowest edge.
  [[nodiscard]] std::size_t underflow_count() const { return underflow_; }
  /// Samples at or above the highest edge.
  [[nodiscard]] std::size_t overflow_count() const { return overflow_; }
  /// NaN samples (never binned).
  [[nodiscard]] std::size_t nan_count() const { return nan_; }
  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count_in_bin(std::size_t bin) const;
  /// [lower, upper) edges of a bin.
  [[nodiscard]] std::pair<double, double> bin_range(std::size_t bin) const;

  /// Renders horizontal bars, one row per bin, scaled to `width` cells.
  /// Underflow/overflow/NaN tallies are appended when non-zero.
  void print(std::ostream& out, int width = 50) const;

 private:
  Histogram(std::vector<double> edges, bool log_scale);

  std::vector<double> edges_;  ///< bin i covers [edges_[i], edges_[i+1])
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t nan_ = 0;
  bool log_scale_;
};

}  // namespace slacksched
