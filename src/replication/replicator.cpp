#include "replication/replicator.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "net/admission_client.hpp"
#include "net/protocol.hpp"

namespace slacksched::repl {

namespace {

using Clock = std::chrono::steady_clock;

int ceil_ms(Clock::duration d) {
  const auto ms = std::chrono::ceil<std::chrono::milliseconds>(d).count();
  return static_cast<int>(std::clamp<std::int64_t>(ms, 0, 1 << 30));
}

}  // namespace

std::vector<std::string> ReplicationConfig::validate() const {
  std::vector<std::string> problems;
  if (port == 0) {
    problems.emplace_back("replication.port must be set (0 is not a port)");
  }
  if (connect_timeout.count() <= 0) {
    problems.emplace_back("replication.connect_timeout must be positive");
  }
  if (ack_timeout.count() <= 0) {
    problems.emplace_back("replication.ack_timeout must be positive");
  }
  if (heartbeat_interval.count() < 0) {
    problems.emplace_back(
        "replication.heartbeat_interval must be >= 0 (0 disables)");
  }
  if (catch_up_batch == 0) {
    problems.emplace_back("replication.catch_up_batch must be >= 1");
  }
  if (max_pending_bytes < kWalRecordBytes) {
    problems.emplace_back(
        "replication.max_pending_bytes must hold at least one record (" +
        std::to_string(kWalRecordBytes) + " bytes)");
  }
  return problems;
}

ShardReplicator::ShardReplicator(int shard, const ReplicationConfig& config)
    : shard_(shard), config_(config) {
  if (config_.heartbeat_interval.count() > 0) {
    heartbeat_ = std::thread([this] { heartbeat_loop(); });
  }
}

ShardReplicator::~ShardReplicator() {
  stop_.store(true, std::memory_order_release);
  if (heartbeat_.joinable()) heartbeat_.join();
  std::lock_guard lock(io_mutex_);
  if (fd_ >= 0) ::close(fd_);
}

void ShardReplicator::on_open(const std::string& path, int machines,
                              std::uint64_t base_records) {
  std::lock_guard lock(io_mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  decoder_ = ReplFrameDecoder();
  dead_ = false;
  connected_.store(false, std::memory_order_release);
  pending_.clear();
  pending_count_ = 0;

  try {
    fd_ = net::connect_with_timeout(config_.host, config_.port,
                                    config_.connect_timeout);
  } catch (const net::NetError& e) {
    if (config_.ack_mode == ReplAckMode::kAsync) {
      // Best-effort mode: the leader serves without a follower; catch-up
      // re-syncs when a later open reconnects.
      dead_ = true;
      return;
    }
    throw ReplError(std::string("replication connect failed: ") + e.what());
  }

  try {
    HelloMsg hello;
    hello.machines = static_cast<std::uint32_t>(machines);
    hello.ack_mode = config_.ack_mode;
    hello.leader_records = base_records;
    std::vector<char> out;
    encode_hello(out, static_cast<std::uint16_t>(shard_), hello);
    send_all(out.data(), out.size(), /*crash_point=*/false);

    ReplFrame frame;
    read_frame(frame, config_.connect_timeout);
    if (frame.type == ReplFrameType::kNack) {
      NackMsg nack;
      std::string error;
      if (!parse_nack(frame, nack, &error)) throw ReplError(error);
      // Fail safe in EVERY ack mode: a refused session (stale leader, bad
      // follower state) must stop this log from serving.
      throw ReplError("follower refused replication session (" +
                      to_string(nack.reason) + "): " + nack.message);
    }
    if (frame.type != ReplFrameType::kWelcome) {
      throw ReplError("expected WELCOME, got frame type " +
                      std::to_string(static_cast<int>(frame.type)));
    }
    std::uint64_t follower = 0;
    std::string error;
    if (!parse_watermark(frame, follower, &error)) throw ReplError(error);
    if (follower > base_records) {
      throw ReplError("stale leader: follower holds " +
                      std::to_string(follower) + " records, this log only " +
                      std::to_string(base_records));
    }
    acked_.store(follower, std::memory_order_release);
    if (follower < base_records) catch_up(path, follower, base_records);
    next_seq_ = base_records;
    connected_.store(true, std::memory_order_release);
  } catch (...) {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
    throw;
  }
}

void ShardReplicator::on_record(const char* frame, std::size_t size,
                                std::uint64_t seq) {
  std::lock_guard lock(io_mutex_);
  if (dead_) return;
  if (fd_ < 0) {
    if (config_.ack_mode == ReplAckMode::kAsync) return;
    throw ReplError("replication session lost before record " +
                    std::to_string(seq));
  }
  if (pending_count_ == 0) pending_base_ = seq - 1;
  pending_.insert(pending_.end(), frame, frame + size);
  ++pending_count_;
  try {
    if (config_.ack_mode == ReplAckMode::kAckOnCommit) {
      flush_pending();
      wait_for_ack(seq);
    } else if (pending_.size() >= config_.max_pending_bytes) {
      flush_pending();
      if (config_.ack_mode == ReplAckMode::kAsync) (void)drain_acks();
    }
  } catch (const ReplError&) {
    fail_session("");  // closes fd; kAsync marks dead
    if (config_.ack_mode != ReplAckMode::kAsync) throw;
  }
}

void ShardReplicator::on_batch(std::uint64_t watermark) {
  std::lock_guard lock(io_mutex_);
  if (dead_) return;
  if (fd_ < 0) {
    if (config_.ack_mode == ReplAckMode::kAsync) return;
    throw ReplError("replication session lost at batch watermark " +
                    std::to_string(watermark));
  }
  try {
    flush_pending();
    if (config_.ack_mode == ReplAckMode::kAckOnBatch) {
      wait_for_ack(watermark);
    } else if (config_.ack_mode == ReplAckMode::kAsync) {
      (void)drain_acks();
    }
  } catch (const ReplError&) {
    fail_session("");
    if (config_.ack_mode != ReplAckMode::kAsync) throw;
  }
}

void ShardReplicator::on_close(std::uint64_t watermark) {
  std::lock_guard lock(io_mutex_);
  if (dead_ || fd_ < 0) return;
  // A clean close drains in every mode — even kAsync promises nothing
  // mid-run but leaves follower == leader on an orderly shutdown.
  try {
    flush_pending();
    wait_for_ack(watermark);
  } catch (const ReplError&) {
    fail_session("");
    if (config_.ack_mode != ReplAckMode::kAsync) throw;
  }
}

void ShardReplicator::send_all(const char* data, std::size_t size,
                               bool crash_point) {
  const auto send_chunk = [this](const char* chunk, std::size_t n) {
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t written =
          ::send(fd_, chunk + sent, n - sent, MSG_NOSIGNAL);
      if (written > 0) {
        sent += static_cast<std::size_t>(written);
        continue;
      }
      if (written < 0 && errno == EINTR) continue;
      throw ReplError(std::string("replication send: ") +
                      std::strerror(errno));
    }
  };
#if defined(SLACKSCHED_FAULT_INJECTION) && SLACKSCHED_FAULT_INJECTION
  if (crash_point && config_.faults != nullptr) {
    // Torn-frame site: half the frame is on the wire when the fault fires
    // — the follower must discard the partial frame, not persist it.
    const std::size_t half = size / 2;
    send_chunk(data, half);
    SLACKSCHED_FAULT_CRASH_POINT(config_.faults,
                                 FaultSite::kReplicationFrame, shard_);
    send_chunk(data + half, size - half);
    return;
  }
#else
  (void)crash_point;
#endif
  send_chunk(data, size);
}

void ShardReplicator::flush_pending() {
  if (pending_count_ == 0) return;
  std::vector<char> out;
  out.reserve(kReplHeaderSize + 12 + pending_.size());
  encode_append(out, static_cast<std::uint16_t>(shard_), pending_base_,
                static_cast<std::uint32_t>(pending_count_), pending_.data(),
                pending_.size());
  send_all(out.data(), out.size(), /*crash_point=*/true);
  frames_sent_.fetch_add(1, std::memory_order_relaxed);
  next_seq_ = pending_base_ + pending_count_;
  pending_.clear();
  pending_count_ = 0;
}

void ShardReplicator::wait_for_ack(std::uint64_t target) {
  const auto deadline = Clock::now() + config_.ack_timeout;
  while (acked_.load(std::memory_order_acquire) < target) {
    const auto now = Clock::now();
    if (now >= deadline) {
      throw ReplError("follower ack timeout: waited " +
                      std::to_string(config_.ack_timeout.count()) +
                      " ms for record " + std::to_string(target) +
                      " (acked " + std::to_string(acked_.load()) + ")");
    }
    ReplFrame frame;
    read_frame(frame, std::chrono::milliseconds(ceil_ms(deadline - now)));
    handle_frame(frame);
  }
}

bool ShardReplicator::drain_acks() {
  try {
    while (true) {
      ReplFrame frame;
      const ReplFrameDecoder::Status status = decoder_.next(frame);
      if (status == ReplFrameDecoder::Status::kFrame) {
        handle_frame(frame);
        continue;
      }
      if (status == ReplFrameDecoder::Status::kError) {
        throw ReplError("replication ack stream corrupt: " +
                        decoder_.error());
      }
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 0);
      if (ready <= 0) return true;  // nothing buffered right now
      char buf[65536];
      const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n > 0) {
        decoder_.feed(buf, static_cast<std::size_t>(n));
        continue;
      }
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) return true;
      if (n == 0) throw ReplError("follower closed the connection");
      throw ReplError(std::string("replication recv: ") +
                      std::strerror(errno));
    }
  } catch (const ReplError&) {
    if (config_.ack_mode != ReplAckMode::kAsync) throw;
    fail_session("");
    return false;
  }
}

void ShardReplicator::read_frame(ReplFrame& out,
                                 std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  while (true) {
    const ReplFrameDecoder::Status status = decoder_.next(out);
    if (status == ReplFrameDecoder::Status::kFrame) return;
    if (status == ReplFrameDecoder::Status::kError) {
      throw ReplError("replication stream corrupt: " + decoder_.error());
    }
    const auto now = Clock::now();
    if (now >= deadline) {
      throw ReplError("timed out waiting for a follower frame");
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, ceil_ms(deadline - now));
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) {
      throw ReplError(std::string("replication poll: ") +
                      std::strerror(errno));
    }
    if (ready == 0) continue;  // re-check the deadline
    char buf[65536];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      decoder_.feed(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) throw ReplError("follower closed the connection");
    throw ReplError(std::string("replication recv: ") + std::strerror(errno));
  }
}

void ShardReplicator::handle_frame(const ReplFrame& frame) {
  std::string error;
  switch (frame.type) {
    case ReplFrameType::kAck:
    case ReplFrameType::kHeartbeatAck: {
      std::uint64_t watermark = 0;
      if (!parse_watermark(frame, watermark, &error)) throw ReplError(error);
      const std::uint64_t prev = acked_.load(std::memory_order_relaxed);
      if (watermark > prev) {
        acked_.store(watermark, std::memory_order_release);
        if (config_.on_ack) config_.on_ack(shard_, watermark);
      }
      return;
    }
    case ReplFrameType::kNack: {
      NackMsg nack;
      if (!parse_nack(frame, nack, &error)) throw ReplError(error);
      throw ReplError("follower refused (" + to_string(nack.reason) +
                      "): " + nack.message);
    }
    default:
      throw ReplError("unexpected replication frame type " +
                      std::to_string(static_cast<int>(frame.type)));
  }
}

void ShardReplicator::catch_up(const std::string& path, std::uint64_t from,
                               std::uint64_t to) {
  const int file = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (file < 0) {
    throw ReplError("catch-up cannot read leader log " + path + ": " +
                    std::strerror(errno));
  }
  try {
    std::vector<char> buf;
    std::uint64_t base = from;
    while (base < to) {
      const std::uint64_t count =
          std::min<std::uint64_t>(config_.catch_up_batch, to - base);
      const std::size_t bytes =
          static_cast<std::size_t>(count) * kWalRecordBytes;
      buf.resize(bytes);
      const off_t offset = static_cast<off_t>(
          kWalHeaderBytes + base * kWalRecordBytes);
      std::size_t got = 0;
      while (got < bytes) {
        const ssize_t n = ::pread(file, buf.data() + got, bytes - got,
                                  offset + static_cast<off_t>(got));
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
          throw ReplError("leader log " + path +
                          " is shorter than its recovered record count "
                          "during catch-up");
        }
        got += static_cast<std::size_t>(n);
      }
      std::vector<char> out;
      encode_append(out, static_cast<std::uint16_t>(shard_), base,
                    static_cast<std::uint32_t>(count), buf.data(), bytes);
      send_all(out.data(), out.size(), /*crash_point=*/true);
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      base += count;
      wait_for_ack(base);
    }
  } catch (...) {
    ::close(file);
    throw;
  }
  ::close(file);
}

void ShardReplicator::fail_session(const std::string& why) {
  (void)why;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  connected_.store(false, std::memory_order_release);
  if (config_.ack_mode == ReplAckMode::kAsync) dead_ = true;
}

void ShardReplicator::heartbeat_loop() {
  constexpr auto kSlice = std::chrono::milliseconds(10);
  auto next_beat = Clock::now() + config_.heartbeat_interval;
  while (!stop_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::min<Clock::duration>(kSlice, config_.heartbeat_interval));
    if (Clock::now() < next_beat) continue;
    next_beat = Clock::now() + config_.heartbeat_interval;
    std::unique_lock lock(io_mutex_, std::try_to_lock);
    // A busy worker holds the lock — and a busy worker is already making
    // progress the follower can see; skip the beat.
    if (!lock.owns_lock()) continue;
    if (dead_ || fd_ < 0 || !connected_.load(std::memory_order_acquire)) {
      continue;
    }
    try {
      std::vector<char> out;
      encode_heartbeat(out, static_cast<std::uint16_t>(shard_), next_seq_);
      send_all(out.data(), out.size(), /*crash_point=*/false);
      (void)drain_acks();
    } catch (const ReplError&) {
      // Cannot throw from a background thread: tear the session down and
      // let the worker's next send (sync modes) report the loss.
      fail_session("");
    }
  }
}

}  // namespace slacksched::repl
