// Tests of the ratio-function solver against every analytic fact the paper
// states: closed forms (Eq. 1 and Section 1.1), the recursion identity (5),
// constraint (6), corner values (7), continuity at corners, monotonicity,
// and Proposition 1's large-m limit.
#include "core/ratio_function.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/expects.hpp"

namespace slacksched {
namespace {

TEST(RatioFunction, M1MatchesGoldwasserKerbikov) {
  for (double eps : {0.001, 0.01, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    const RatioSolution sol = RatioFunction::solve(eps, 1);
    EXPECT_EQ(sol.k, 1);
    EXPECT_NEAR(sol.c, 2.0 + 1.0 / eps, 1e-9) << "eps=" << eps;
    EXPECT_NEAR(sol.c, RatioFunction::closed_form_m1(eps), 1e-9);
  }
}

TEST(RatioFunction, M2MatchesEquationOne) {
  for (double eps : {0.001, 0.01, 0.05, 0.1, 0.2, 2.0 / 7.0, 0.3, 0.5, 0.75,
                     1.0}) {
    const RatioSolution sol = RatioFunction::solve(eps, 2);
    EXPECT_NEAR(sol.c, RatioFunction::closed_form_m2(eps), 1e-8)
        << "eps=" << eps;
  }
}

TEST(RatioFunction, M2PhaseIndexSwitchesAtTwoSevenths) {
  EXPECT_EQ(RatioFunction::solve(2.0 / 7.0 - 1e-6, 2).k, 1);
  EXPECT_EQ(RatioFunction::solve(2.0 / 7.0 + 1e-6, 2).k, 2);
}

TEST(RatioFunction, CornerM2IsTwoSevenths) {
  EXPECT_NEAR(RatioFunction::corner(1, 2), 2.0 / 7.0, 1e-9);
}

TEST(RatioFunction, AnchorIsAlwaysSatisfied) {
  for (int m : {1, 2, 3, 4, 8}) {
    for (double eps : {0.001, 0.01, 0.1, 0.5, 1.0}) {
      const RatioSolution sol = RatioFunction::solve(eps, m);
      EXPECT_NEAR(sol.f_at(m), (1.0 + eps) / eps, 1e-6 * (1.0 + 1.0 / eps))
          << "m=" << m << " eps=" << eps;
    }
  }
}

TEST(RatioFunction, RecursionIdentityHoldsForEveryQ) {
  // Identity (5): c == (1 + m f_q) / (k + sum_{h=k}^{q-1}(f_h - 1)).
  for (int m : {2, 3, 4, 6}) {
    for (double eps : {0.003, 0.02, 0.15, 0.6, 1.0}) {
      const RatioSolution sol = RatioFunction::solve(eps, m);
      double denom = static_cast<double>(sol.k);
      for (int q = sol.k; q <= m; ++q) {
        const double ratio = (1.0 + m * sol.f_at(q)) / denom;
        EXPECT_NEAR(ratio, sol.c, 1e-7 * sol.c)
            << "m=" << m << " eps=" << eps << " q=" << q;
        denom += sol.f_at(q) - 1.0;
      }
    }
  }
}

TEST(RatioFunction, ConstraintSixHolds) {
  // f_q >= 2 for all q in {k..m} of the selected variant.
  for (int m : {1, 2, 3, 4, 5}) {
    for (double eps : {0.001, 0.01, 0.1, 0.3, 0.7, 1.0}) {
      const RatioSolution sol = RatioFunction::solve(eps, m);
      for (int q = sol.k; q <= m; ++q) {
        EXPECT_GE(sol.f_at(q), 2.0 - 1e-9)
            << "m=" << m << " eps=" << eps << " q=" << q;
      }
    }
  }
}

TEST(RatioFunction, ParametersIncreaseWithQ) {
  // f_q < f_{q+1} (Section 2).
  for (int m : {2, 3, 4, 6}) {
    for (double eps : {0.005, 0.05, 0.4}) {
      const RatioSolution sol = RatioFunction::solve(eps, m);
      for (int q = sol.k; q < m; ++q) {
        EXPECT_LT(sol.f_at(q), sol.f_at(q + 1))
            << "m=" << m << " eps=" << eps << " q=" << q;
      }
    }
  }
}

TEST(RatioFunction, CDecreasesInEps) {
  for (int m : {1, 2, 3, 4}) {
    double prev = std::numeric_limits<double>::infinity();
    for (double eps = 0.01; eps <= 1.0; eps += 0.01) {
      const double c = RatioFunction::solve(eps, m).c;
      EXPECT_LT(c, prev) << "m=" << m << " eps=" << eps;
      prev = c;
    }
  }
}

TEST(RatioFunction, CDecreasesInM) {
  for (double eps : {0.01, 0.05, 0.2, 0.8}) {
    double prev = std::numeric_limits<double>::infinity();
    for (int m = 1; m <= 8; ++m) {
      const double c = RatioFunction::solve(eps, m).c;
      EXPECT_LE(c, prev + 1e-9) << "m=" << m << " eps=" << eps;
      prev = c;
    }
  }
}

TEST(RatioFunction, ContinuousAtCorners) {
  for (int m : {2, 3, 4, 5}) {
    for (int k = 1; k < m; ++k) {
      const double corner = RatioFunction::corner(k, m);
      if (corner >= 1.0) continue;
      const double below = RatioFunction::solve(corner - 1e-7, m).c;
      const double above = RatioFunction::solve(corner + 1e-7, m).c;
      EXPECT_NEAR(below, above, 1e-3)
          << "m=" << m << " corner k=" << k << " at " << corner;
    }
  }
}

TEST(RatioFunction, CornersArePhaseBoundaries) {
  for (int m : {2, 3, 4}) {
    for (int k = 1; k < m; ++k) {
      const double corner = RatioFunction::corner(k, m);
      if (corner >= 1.0) continue;
      EXPECT_EQ(RatioFunction::solve(corner - 1e-6, m).k, k)
          << "m=" << m << " k=" << k;
      EXPECT_EQ(RatioFunction::solve(corner + 1e-6, m).k, k + 1)
          << "m=" << m << " k=" << k;
    }
  }
}

TEST(RatioFunction, CornersIncreaseInK) {
  for (int m : {2, 3, 4, 5, 6}) {
    double prev = 0.0;
    for (int k = 0; k <= m; ++k) {
      const double corner = RatioFunction::corner(k, m);
      EXPECT_GE(corner, prev) << "m=" << m << " k=" << k;
      prev = corner;
    }
    EXPECT_DOUBLE_EQ(RatioFunction::corner(m, m), 1.0);
    EXPECT_DOUBLE_EQ(RatioFunction::corner(0, m), 0.0);
  }
}

TEST(RatioFunction, CornerDefinitionFkEqualsTwo) {
  // Eq. (7): at eps_{k,m} the k-variant has f_k = 2.
  for (int m : {2, 3, 4}) {
    for (int k = 1; k < m; ++k) {
      const double corner = RatioFunction::corner(k, m);
      if (corner >= 1.0) continue;
      const RatioSolution sol = RatioFunction::solve_with_k(corner, m, k);
      EXPECT_NEAR(sol.f.front(), 2.0, 1e-6) << "m=" << m << " k=" << k;
    }
  }
}

TEST(RatioFunction, LastPhaseClosedForm) {
  for (int m : {1, 2, 3, 4, 6}) {
    // k = m exactly in the last slack interval (eps near 1).
    for (double eps : {0.95, 1.0}) {
      const RatioSolution sol = RatioFunction::solve(eps, m);
      if (sol.k != m) continue;
      EXPECT_NEAR(sol.c, RatioFunction::closed_form_last_phase(eps, m), 1e-9);
    }
  }
}

TEST(RatioFunction, SecondLastPhaseClosedForm) {
  for (int m : {2, 3, 4, 5}) {
    // Sample inside (eps_{m-2,m}, eps_{m-1,m}] where k = m-1.
    const double lo = RatioFunction::corner(m - 2, m);
    const double hi = RatioFunction::corner(m - 1, m);
    if (hi >= 1.0 || hi <= lo) continue;
    const double eps = 0.5 * (lo + hi);
    const RatioSolution sol = RatioFunction::solve(eps, m);
    ASSERT_EQ(sol.k, m - 1) << "m=" << m << " eps=" << eps;
    EXPECT_NEAR(sol.c, RatioFunction::closed_form_second_last_phase(eps, m),
                1e-7)
        << "m=" << m << " eps=" << eps;
  }
}

TEST(RatioFunction, ThirdLastPhaseClosedForm) {
  // k = m - 2 inside (eps_{m-3,m}, eps_{m-2,m}]: the cubic's largest real
  // root equals the numeric solution.
  for (int m : {3, 4, 5, 6}) {
    const double lo = RatioFunction::corner(m - 3, m);
    const double hi = RatioFunction::corner(m - 2, m);
    if (hi >= 1.0 || hi <= lo) continue;
    for (double frac : {0.25, 0.5, 0.9}) {
      const double eps = lo + frac * (hi - lo);
      const RatioSolution sol = RatioFunction::solve(eps, m);
      ASSERT_EQ(sol.k, m - 2) << "m=" << m << " eps=" << eps;
      EXPECT_NEAR(sol.c, RatioFunction::closed_form_third_last_phase(eps, m),
                  1e-6)
          << "m=" << m << " eps=" << eps;
    }
  }
}

TEST(RatioFunction, ThirdLastPhaseMatchesFirstPhaseForM3) {
  // For m = 3, k = m - 2 = 1 is the first phase: the cubic must reproduce
  // the whole leftmost branch of Fig. 1's green curve.
  for (double eps : {0.001, 0.01, 0.05, 0.089}) {
    const RatioSolution sol = RatioFunction::solve(eps, 3);
    ASSERT_EQ(sol.k, 1);
    EXPECT_NEAR(sol.c, RatioFunction::closed_form_third_last_phase(eps, 3),
                1e-6 * sol.c)
        << "eps=" << eps;
  }
}

TEST(RatioFunction, Proposition1LargeMLimit) {
  // The exact large-m limit at fixed eps is 2 + ln(1/eps) (the solution of
  // the proposition's differential equation with the f_k = 2 boundary).
  for (double eps : {0.001, 0.005, 0.02}) {
    const double target = RatioFunction::limit_large_m(eps);
    const double deviation_small_m =
        std::fabs(RatioFunction::solve(eps, 16).c - target);
    const double deviation_large_m =
        std::fabs(RatioFunction::solve(eps, 2048).c - target);
    EXPECT_LT(deviation_large_m, deviation_small_m) << "eps=" << eps;
    EXPECT_LT(deviation_large_m / target, 0.01) << "eps=" << eps;
  }
}

TEST(RatioFunction, Proposition1LeadingTermDominatesForSmallEps) {
  // The paper's ln(1/eps) statement: the additive constant becomes
  // negligible as eps -> 0 (with m large).
  const double rel_at_large_eps =
      std::fabs(RatioFunction::solve(1e-2, 2048).c -
                RatioFunction::proposition1_leading_term(1e-2)) /
      RatioFunction::proposition1_leading_term(1e-2);
  const double rel_at_small_eps =
      std::fabs(RatioFunction::solve(1e-9, 2048).c -
                RatioFunction::proposition1_leading_term(1e-9)) /
      RatioFunction::proposition1_leading_term(1e-9);
  EXPECT_LT(rel_at_small_eps, rel_at_large_eps);
  EXPECT_LT(rel_at_small_eps, 0.15);
}

TEST(RatioFunction, CDecreasesInMTowardLimit) {
  for (double eps : {0.001, 0.02}) {
    const double limit = RatioFunction::limit_large_m(eps);
    double prev = std::numeric_limits<double>::infinity();
    for (int m : {16, 64, 256, 1024}) {
      const double c = RatioFunction::solve(eps, m).c;
      EXPECT_LT(c, prev);
      EXPECT_GT(c, limit - 1e-9) << "c must stay above the limit";
      prev = c;
    }
  }
}

TEST(RatioFunction, Theorem2BoundAddsPenaltyOnlyForLargeK) {
  const RatioSolution small_k = RatioFunction::solve(0.01, 2);  // k = 1
  EXPECT_DOUBLE_EQ(small_k.theorem2_bound(), small_k.c);

  // Force a variant with k = 4 via solve_with_k on a large machine count.
  RatioSolution large_k = RatioFunction::solve_with_k(0.5, 8, 4);
  EXPECT_NEAR(large_k.theorem2_bound() - large_k.c,
              (3.0 - std::exp(1.0)) / (std::exp(1.0) - 1.0), 1e-12);
}

TEST(RatioFunction, SolveWithKMatchesSolveOnSelectedK) {
  for (int m : {2, 3, 5}) {
    for (double eps : {0.01, 0.2, 0.9}) {
      const RatioSolution chosen = RatioFunction::solve(eps, m);
      const RatioSolution forced =
          RatioFunction::solve_with_k(eps, m, chosen.k);
      EXPECT_NEAR(chosen.c, forced.c, 1e-12);
    }
  }
}

TEST(RatioFunction, AblationVariantsAreNeverBetter) {
  // Forcing the wrong k yields a weaker (or equal) guarantee: c is minimal
  // at the selected k among variants whose constraint f_k >= 2 holds.
  for (int m : {3, 4}) {
    for (double eps : {0.02, 0.1, 0.5}) {
      const RatioSolution chosen = RatioFunction::solve(eps, m);
      for (int k = 1; k <= m; ++k) {
        const RatioSolution forced = RatioFunction::solve_with_k(eps, m, k);
        if (forced.f.front() < 2.0) continue;  // variant invalid
        EXPECT_GE(forced.c, chosen.c - 1e-9)
            << "m=" << m << " eps=" << eps << " k=" << k;
      }
    }
  }
}

TEST(RatioFunction, InputValidation) {
  EXPECT_THROW(RatioFunction::solve(0.0, 2), PreconditionError);
  EXPECT_THROW(RatioFunction::solve(1.5, 2), PreconditionError);
  EXPECT_THROW(RatioFunction::solve(0.5, 0), PreconditionError);
  EXPECT_THROW(RatioFunction::solve_with_k(0.5, 2, 3), PreconditionError);
  EXPECT_THROW((void)RatioFunction::corner(3, 2), PreconditionError);
}

TEST(RatioFunction, FAtRejectsOutOfRangeQ) {
  const RatioSolution sol = RatioFunction::solve(0.5, 3);
  EXPECT_THROW((void)sol.f_at(sol.k - 1), PreconditionError);
  EXPECT_THROW((void)sol.f_at(4), PreconditionError);
}

/// Parameterized sweep: the solver's invariants across a dense grid.
class RatioGridSweep
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RatioGridSweep, SolutionInvariants) {
  const auto [m, eps] = GetParam();
  const RatioSolution sol = RatioFunction::solve(eps, m);
  EXPECT_GE(sol.k, 1);
  EXPECT_LE(sol.k, m);
  EXPECT_GT(sol.c, 1.0);
  EXPECT_EQ(sol.f.size(), static_cast<std::size_t>(m - sol.k + 1));
  // c = (m f_k + 1)/k (Theorem 1's expression).
  EXPECT_NEAR(sol.c, (m * sol.f_at(sol.k) + 1.0) / sol.k, 1e-7 * sol.c);
  // The ratio is bounded below by the trivial lower bounds of both regimes.
  EXPECT_GT(sol.c, 1.0 + 1.0 / (m * eps) * 0.0);  // sanity: positive
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RatioGridSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 8),
                       ::testing::Values(0.001, 0.004, 0.02, 0.09, 0.28,
                                         0.51, 0.77, 1.0)));

}  // namespace
}  // namespace slacksched
