#include "common/svg.hpp"

#include <gtest/gtest.h>

#include <fstream>

#include "common/expects.hpp"
#include "sched/gantt.hpp"

namespace slacksched {
namespace {

TEST(Svg, EmptyDocumentIsValidSvg) {
  SvgDocument svg(100.0, 50.0);
  const std::string markup = svg.str();
  EXPECT_NE(markup.find("<svg"), std::string::npos);
  EXPECT_NE(markup.find("</svg>"), std::string::npos);
  EXPECT_NE(markup.find("width=\"100.00\""), std::string::npos);
}

TEST(Svg, ShapesAppearInOutput) {
  SvgDocument svg(200.0, 200.0);
  svg.line(0.0, 0.0, 10.0, 10.0);
  svg.rect(5.0, 5.0, 20.0, 10.0, "#ff0000");
  svg.circle(50.0, 50.0, 4.0, "none", "#00ff00");
  svg.polyline({{0.0, 0.0}, {1.0, 1.0}, {2.0, 0.5}}, "#0000ff");
  svg.text(10.0, 20.0, "hello", 12.0);
  const std::string markup = svg.str();
  EXPECT_NE(markup.find("<line"), std::string::npos);
  EXPECT_NE(markup.find("<rect x=\"5.00\""), std::string::npos);
  EXPECT_NE(markup.find("<circle"), std::string::npos);
  EXPECT_NE(markup.find("<polyline"), std::string::npos);
  EXPECT_NE(markup.find(">hello</text>"), std::string::npos);
}

TEST(Svg, EscapesTextContent) {
  SvgDocument svg(100.0, 100.0);
  svg.text(0.0, 0.0, "a < b & c > d");
  const std::string markup = svg.str();
  EXPECT_NE(markup.find("a &lt; b &amp; c &gt; d"), std::string::npos);
  EXPECT_EQ(markup.find("a < b"), std::string::npos);
}

TEST(Svg, DegeneratePolylineIsSkipped) {
  SvgDocument svg(100.0, 100.0);
  svg.polyline({{1.0, 1.0}}, "#000000");
  EXPECT_EQ(svg.str().find("<polyline"), std::string::npos);
}

TEST(Svg, SaveWritesFile) {
  SvgDocument svg(100.0, 100.0);
  svg.circle(10.0, 10.0, 2.0, "#123456");
  const std::string path = ::testing::TempDir() + "/slacksched_test.svg";
  svg.save(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, svg.str());
}

TEST(Svg, SaveRejectsBadPath) {
  SvgDocument svg(10.0, 10.0);
  EXPECT_THROW(svg.save("/nonexistent/dir/x.svg"), PreconditionError);
}

TEST(Svg, RejectsDegenerateCanvas) {
  EXPECT_THROW(SvgDocument(0.0, 10.0), PreconditionError);
  EXPECT_THROW(SvgDocument(10.0, -1.0), PreconditionError);
}

TEST(AxisScale, LinearMapping) {
  const AxisScale scale(0.0, 10.0, 100.0, 200.0);
  EXPECT_DOUBLE_EQ(scale(0.0), 100.0);
  EXPECT_DOUBLE_EQ(scale(10.0), 200.0);
  EXPECT_DOUBLE_EQ(scale(5.0), 150.0);
}

TEST(AxisScale, InvertedPixelRange) {
  // y axes typically run top-down.
  const AxisScale scale(0.0, 1.0, 300.0, 100.0);
  EXPECT_DOUBLE_EQ(scale(0.0), 300.0);
  EXPECT_DOUBLE_EQ(scale(1.0), 100.0);
}

TEST(AxisScale, LogMapping) {
  const AxisScale scale(0.01, 1.0, 0.0, 200.0, /*log=*/true);
  EXPECT_DOUBLE_EQ(scale(0.01), 0.0);
  EXPECT_DOUBLE_EQ(scale(1.0), 200.0);
  EXPECT_NEAR(scale(0.1), 100.0, 1e-9);
}

TEST(AxisScale, RejectsBadDomain) {
  EXPECT_THROW(AxisScale(1.0, 1.0, 0.0, 10.0), PreconditionError);
  EXPECT_THROW(AxisScale(-1.0, 1.0, 0.0, 10.0, true), PreconditionError);
}

TEST(Palette, IsNonEmptyAndStable) {
  const auto& a = default_palette();
  const auto& b = default_palette();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(&a, &b);
}

TEST(GanttSvg, RendersEveryPlacement) {
  Schedule schedule(2);
  Job job;
  job.id = 3;
  job.release = 0.0;
  job.proc = 5.0;
  job.deadline = 100.0;
  schedule.commit(job, 0, 0.0);
  job.id = 4;
  schedule.commit(job, 1, 2.0);

  GanttOptions options;
  options.title = "svg-gantt-test";
  const SvgDocument svg = render_gantt_svg(schedule, options);
  const std::string markup = svg.str();
  EXPECT_NE(markup.find("svg-gantt-test"), std::string::npos);
  EXPECT_NE(markup.find(">m0</text>"), std::string::npos);
  EXPECT_NE(markup.find(">m1</text>"), std::string::npos);
  EXPECT_NE(markup.find(">J3</text>"), std::string::npos);
  EXPECT_NE(markup.find(">J4</text>"), std::string::npos);
}

TEST(GanttSvg, HonorsExplicitHorizon) {
  Schedule schedule(1);
  Job job;
  job.id = 1;
  job.release = 0.0;
  job.proc = 1.0;
  job.deadline = 100.0;
  schedule.commit(job, 0, 0.0);
  GanttOptions options;
  options.t_end = 50.0;
  const SvgDocument svg = render_gantt_svg(schedule, options);
  // The last axis tick should read 50.
  EXPECT_NE(svg.str().find(">50</text>"), std::string::npos);
}

}  // namespace
}  // namespace slacksched
