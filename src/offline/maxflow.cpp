#include "offline/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "common/expects.hpp"

namespace slacksched {

MaxFlow::MaxFlow(std::size_t nodes) : graph_(nodes) {
  SLACKSCHED_EXPECTS(nodes >= 2);
}

std::size_t MaxFlow::add_edge(std::size_t u, std::size_t v, double capacity) {
  SLACKSCHED_EXPECTS(u < graph_.size() && v < graph_.size());
  SLACKSCHED_EXPECTS(capacity >= 0.0);
  graph_[u].push_back({v, capacity, graph_[v].size()});
  graph_[v].push_back({u, 0.0, graph_[u].size() - 1});
  handles_.emplace_back(u, graph_[u].size() - 1);
  original_capacity_.push_back(capacity);
  return handles_.size() - 1;
}

bool MaxFlow::bfs(std::size_t s, std::size_t t) {
  level_.assign(graph_.size(), -1);
  std::queue<std::size_t> queue;
  level_[s] = 0;
  queue.push(s);
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop();
    for (const Edge& e : graph_[v]) {
      if (e.capacity > kFlowEps && level_[e.to] < 0) {
        level_[e.to] = level_[v] + 1;
        queue.push(e.to);
      }
    }
  }
  return level_[t] >= 0;
}

double MaxFlow::dfs(std::size_t v, std::size_t t, double pushed) {
  if (v == t) return pushed;
  for (std::size_t& i = iter_[v]; i < graph_[v].size(); ++i) {
    Edge& e = graph_[v][i];
    if (e.capacity <= kFlowEps || level_[e.to] != level_[v] + 1) continue;
    const double got = dfs(e.to, t, std::min(pushed, e.capacity));
    if (got > kFlowEps) {
      e.capacity -= got;
      graph_[e.to][e.reverse].capacity += got;
      return got;
    }
  }
  return 0.0;
}

double MaxFlow::max_flow(std::size_t s, std::size_t t) {
  SLACKSCHED_EXPECTS(s < graph_.size() && t < graph_.size());
  SLACKSCHED_EXPECTS(s != t);
  double total = 0.0;
  while (bfs(s, t)) {
    iter_.assign(graph_.size(), 0);
    while (true) {
      const double pushed =
          dfs(s, t, std::numeric_limits<double>::infinity());
      if (pushed <= kFlowEps) break;
      total += pushed;
    }
  }
  return total;
}

double MaxFlow::flow_on(std::size_t edge_handle) const {
  SLACKSCHED_EXPECTS(edge_handle < handles_.size());
  const auto [node, index] = handles_[edge_handle];
  return original_capacity_[edge_handle] - graph_[node][index].capacity;
}

}  // namespace slacksched
