#include "common/ascii_chart.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>

#include "common/expects.hpp"

namespace slacksched {

namespace {

double transform(double v, bool log_scale) {
  return log_scale ? std::log10(v) : v;
}

bool usable(double v, bool log_scale) {
  if (!std::isfinite(v)) return false;
  return !log_scale || v > 0.0;
}

std::string format_tick(double v) {
  std::ostringstream os;
  os.precision(3);
  os << v;
  return os.str();
}

}  // namespace

void render_chart(std::ostream& out, const std::vector<ChartSeries>& series,
                  const ChartOptions& options) {
  SLACKSCHED_EXPECTS(options.width >= 16 && options.height >= 4);

  double xmin = std::numeric_limits<double>::infinity();
  double xmax = -xmin;
  double ymin = xmin;
  double ymax = -xmin;
  for (const auto& s : series) {
    SLACKSCHED_EXPECTS(s.x.size() == s.y.size());
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y))
        continue;
      const double tx = transform(s.x[i], options.log_x);
      const double ty = transform(s.y[i], options.log_y);
      xmin = std::min(xmin, tx);
      xmax = std::max(xmax, tx);
      ymin = std::min(ymin, ty);
      ymax = std::max(ymax, ty);
    }
  }
  if (!(xmin < xmax)) xmax = xmin + 1.0;
  if (!(ymin < ymax)) ymax = ymin + 1.0;

  const int w = options.width;
  const int h = options.height;
  std::vector<std::string> grid(static_cast<std::size_t>(h),
                                std::string(static_cast<std::size_t>(w), ' '));

  for (const auto& s : series) {
    for (std::size_t i = 0; i < s.x.size(); ++i) {
      if (!usable(s.x[i], options.log_x) || !usable(s.y[i], options.log_y))
        continue;
      const double tx = transform(s.x[i], options.log_x);
      const double ty = transform(s.y[i], options.log_y);
      const int col = static_cast<int>(
          std::lround((tx - xmin) / (xmax - xmin) * (w - 1)));
      const int row = static_cast<int>(
          std::lround((ty - ymin) / (ymax - ymin) * (h - 1)));
      const std::size_t r = static_cast<std::size_t>(h - 1 - row);
      const std::size_t c = static_cast<std::size_t>(col);
      grid[r][c] = s.glyph;
    }
  }

  if (!options.title.empty()) out << options.title << '\n';

  auto y_at = [&](int row_from_top) {
    const double frac =
        static_cast<double>(h - 1 - row_from_top) / (h - 1);
    const double t = ymin + frac * (ymax - ymin);
    return options.log_y ? std::pow(10.0, t) : t;
  };

  for (int r = 0; r < h; ++r) {
    std::string label;
    if (r == 0 || r == h - 1 || r == h / 2)
      label = format_tick(y_at(r));
    out << (label.empty() ? std::string(9, ' ')
                          : (label.size() < 9
                                 ? std::string(9 - label.size(), ' ') + label
                                 : label.substr(0, 9)))
        << " |" << grid[static_cast<std::size_t>(r)] << '\n';
  }
  out << std::string(9, ' ') << " +" << std::string(static_cast<std::size_t>(w), '-')
      << '\n';
  const double x_lo = options.log_x ? std::pow(10.0, xmin) : xmin;
  const double x_hi = options.log_x ? std::pow(10.0, xmax) : xmax;
  out << std::string(11, ' ') << format_tick(x_lo) << "  ...  "
      << options.x_label << (options.log_x ? " (log scale)" : "") << "  ...  "
      << format_tick(x_hi) << '\n';
  out << "  legend: ";
  for (std::size_t i = 0; i < series.size(); ++i) {
    if (i != 0) out << ", ";
    out << '\'' << series[i].glyph << "' = " << series[i].name;
  }
  out << '\n';
}

}  // namespace slacksched
