#include "core/ratio_function.hpp"

#include <cmath>
#include <limits>

#include "common/expects.hpp"

namespace slacksched {

namespace {

/// Forward recursion: given c and k, computes f_k..f_m. Returns the partial
/// denominators as well so callers can detect non-positive denominators
/// (which mean c is far too small). Returns false if the recursion degenerates.
bool forward_recursion(double c, int m, int k, std::vector<double>& f_out) {
  f_out.assign(static_cast<std::size_t>(m - k + 1), 0.0);
  double denom = static_cast<double>(k);  // k + sum_{h=k}^{q-1} (f_h - 1)
  for (int q = k; q <= m; ++q) {
    if (denom <= 0.0) return false;
    const double f_q = (c * denom - 1.0) / static_cast<double>(m);
    f_out[static_cast<std::size_t>(q - k)] = f_q;
    denom += f_q - 1.0;
  }
  return true;
}

/// f_m as a function of c for the k-variant (-inf when degenerate), the
/// monotone function we bisect on.
double f_m_of_c(double c, int m, int k, std::vector<double>& scratch) {
  if (!forward_recursion(c, m, k, scratch)) {
    return -std::numeric_limits<double>::infinity();
  }
  return scratch.back();
}

}  // namespace

double RatioSolution::f_at(int q) const {
  SLACKSCHED_EXPECTS(q >= k && q <= m);
  return f[static_cast<std::size_t>(q - k)];
}

double RatioSolution::theorem2_bound() const {
  constexpr double kDelayedExecutionPenalty =
      (3.0 - 2.718281828459045235) / (2.718281828459045235 - 1.0);
  return k <= 3 ? c : c + kDelayedExecutionPenalty;
}

RatioSolution RatioFunction::solve_with_k(double eps, int m, int k) {
  SLACKSCHED_EXPECTS(eps >= kMinEps && eps <= 1.0);
  SLACKSCHED_EXPECTS(m >= 1);
  SLACKSCHED_EXPECTS(k >= 1 && k <= m);

  const double target_f_m = (1.0 + eps) / eps;  // anchor (4)

  std::vector<double> scratch;
  // Bracket the root: f_m(c) is strictly increasing where defined.
  double lo = 1.0 / static_cast<double>(m);  // gives f_k = (k/m - 1)/m < target
  double hi = 1.0 + static_cast<double>(m) * target_f_m;  // generous
  // Expand hi defensively (needed only for extreme parameters).
  for (int i = 0; i < 128 && f_m_of_c(hi, m, k, scratch) < target_f_m; ++i) {
    hi *= 2.0;
  }
  SLACKSCHED_ENSURES(f_m_of_c(hi, m, k, scratch) >= target_f_m);

  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (f_m_of_c(mid, m, k, scratch) < target_f_m) {
      lo = mid;
    } else {
      hi = mid;
    }
  }

  RatioSolution sol;
  sol.eps = eps;
  sol.m = m;
  sol.k = k;
  sol.c = 0.5 * (lo + hi);
  const bool ok = forward_recursion(sol.c, m, k, sol.f);
  SLACKSCHED_ENSURES(ok);
  return sol;
}

RatioSolution RatioFunction::solve(double eps, int m) {
  SLACKSCHED_EXPECTS(eps >= kMinEps && eps <= 1.0);
  SLACKSCHED_EXPECTS(m >= 1);
  // The phase index is the smallest k whose variant satisfies f_k >= 2
  // (Eq. 6). k = m always qualifies because f_m = (1+eps)/eps >= 2 for
  // eps <= 1, so the loop always terminates.
  for (int k = 1; k < m; ++k) {
    RatioSolution sol = solve_with_k(eps, m, k);
    if (sol.f.front() >= 2.0) return sol;
  }
  return solve_with_k(eps, m, m);
}

double RatioFunction::corner(int k, int m) {
  SLACKSCHED_EXPECTS(m >= 1);
  SLACKSCHED_EXPECTS(k >= 0 && k <= m);
  if (k == 0) return 0.0;
  if (k == m) return 1.0;  // f_m(1) = 2 exactly: the anchor at eps = 1
  // f_k(eps) is strictly decreasing in eps; find f_k = 2 by bisection.
  double lo = kMinEps;
  double hi = 1.0;
  if (solve_with_k(hi, m, k).f.front() >= 2.0) return 1.0;  // no transition
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (solve_with_k(mid, m, k).f.front() >= 2.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double RatioFunction::closed_form_m1(double eps) {
  SLACKSCHED_EXPECTS(eps > 0.0 && eps <= 1.0);
  return 2.0 + 1.0 / eps;
}

double RatioFunction::closed_form_m2(double eps) {
  SLACKSCHED_EXPECTS(eps > 0.0 && eps <= 1.0);
  constexpr double kCornerM2 = 2.0 / 7.0;  // eps_{1,2}, Eq. (1)
  if (eps < kCornerM2) {
    return 2.0 * std::sqrt(25.0 / 16.0 + 1.0 / eps) + 0.5;
  }
  return 1.5 + 1.0 / eps;
}

double RatioFunction::closed_form_last_phase(double eps, int m) {
  SLACKSCHED_EXPECTS(eps > 0.0 && eps <= 1.0);
  SLACKSCHED_EXPECTS(m >= 1);
  // k = m: c = (m * f_m + 1) / m with f_m = (1 + eps) / eps.
  return (static_cast<double>(m) * (1.0 + eps) / eps + 1.0) /
         static_cast<double>(m);
}

double RatioFunction::closed_form_second_last_phase(double eps, int m) {
  SLACKSCHED_EXPECTS(eps > 0.0 && eps <= 1.0);
  SLACKSCHED_EXPECTS(m >= 2);
  // k = m - 1, two equalized ratios:
  //   c = (1 + m a) / (m - 1) = (1 + m F) / (m - 2 + a),  a = f_{m-1},
  // with F = (1+eps)/eps, giving the quadratic
  //   m a^2 + (1 + m (m - 2)) a + (m - 2) - (m - 1)(1 + m F) = 0.
  const double F = (1.0 + eps) / eps;
  const double md = static_cast<double>(m);
  const double b = 1.0 + md * (md - 2.0);
  const double c0 = (md - 2.0) - (md - 1.0) * (1.0 + md * F);
  const double a = (-b + std::sqrt(b * b - 4.0 * md * c0)) / (2.0 * md);
  return (1.0 + md * a) / (md - 1.0);
}

namespace {

/// Largest real root of A x^3 + B x^2 + C x + D (A != 0) via Cardano /
/// Viete. Exact arithmetic on the closed form, not iteration.
double largest_real_cubic_root(double A, double B, double C, double D) {
  SLACKSCHED_EXPECTS(A != 0.0);
  const double b = B / A;
  const double c = C / A;
  const double d = D / A;
  // Depress: x = t - b/3 -> t^3 + p t + q.
  const double p = c - b * b / 3.0;
  const double q = 2.0 * b * b * b / 27.0 - b * c / 3.0 + d;
  const double shift = -b / 3.0;
  const double discriminant = q * q / 4.0 + p * p * p / 27.0;
  if (discriminant >= 0.0) {
    // One real root.
    const double s = std::sqrt(discriminant);
    const double u = std::cbrt(-q / 2.0 + s);
    const double v = std::cbrt(-q / 2.0 - s);
    return u + v + shift;
  }
  // Three real roots (casus irreducibilis): trigonometric form; the
  // largest corresponds to k = 0.
  const double r = 2.0 * std::sqrt(-p / 3.0);
  const double phi = std::acos(3.0 * q / (p * r));
  return r * std::cos(phi / 3.0) + shift;
}

}  // namespace

double RatioFunction::closed_form_third_last_phase(double eps, int m) {
  SLACKSCHED_EXPECTS(eps > 0.0 && eps <= 1.0);
  SLACKSCHED_EXPECTS(m >= 3);
  // Eliminating f_{m-2} = (c(m-2) - 1)/m and f_{m-1} from the equalized
  // ratios (5) with anchor f_m = (1+eps)/eps yields the cubic below
  // (multiply the q = m equation by m^2 and substitute).
  const double F = (1.0 + eps) / eps;
  const double md = static_cast<double>(m);
  const double A = md - 2.0;
  const double B = md * (2.0 * md - 5.0) - 1.0;
  const double C = md * md * (md - 4.0) - 2.0 * md;
  const double D = -md * md * (1.0 + md * F);
  return largest_real_cubic_root(A, B, C, D);
}

double RatioFunction::proposition1_leading_term(double eps) {
  SLACKSCHED_EXPECTS(eps > 0.0 && eps <= 1.0);
  return std::log(1.0 / eps);
}

double RatioFunction::limit_large_m(double eps) {
  SLACKSCHED_EXPECTS(eps > 0.0 && eps <= 1.0);
  return 2.0 + std::log(1.0 / eps);
}

}  // namespace slacksched
