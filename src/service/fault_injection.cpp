#include "service/fault_injection.hpp"

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/expects.hpp"
#include "common/rng.hpp"

namespace slacksched {

namespace {

std::uint64_t count_key(FaultSite site, int shard) {
  return (static_cast<std::uint64_t>(shard) << 8) |
         static_cast<std::uint64_t>(site);
}

}  // namespace

std::string to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kEnqueue:
      return "enqueue";
    case FaultSite::kDequeue:
      return "dequeue";
    case FaultSite::kCommit:
      return "commit";
    case FaultSite::kFsync:
      return "fsync";
    case FaultSite::kWorkerPanic:
      return "worker-panic";
    case FaultSite::kReplicationFrame:
      return "replication-frame";
    case FaultSite::kFailover:
      return "failover";
    case FaultSite::kResizeGrow:
      return "resize-grow";
    case FaultSite::kResizeShrink:
      return "resize-shrink";
  }
  return "unknown";
}

InjectedFault::InjectedFault(FaultSite site, int shard, std::uint64_t hit)
    : std::runtime_error("injected fault: " + to_string(site) + " on shard " +
                         std::to_string(shard) + " (hit " +
                         std::to_string(hit) + ")"),
      site_(site),
      shard_(shard) {}

FaultPlan FaultPlan::random_crash(std::uint64_t seed, int shards,
                                  std::uint64_t max_hit) {
  SLACKSCHED_EXPECTS(shards >= 1);
  SLACKSCHED_EXPECTS(max_hit >= 1);
  SplitMix64 mix(seed);
  constexpr FaultSite kCrashSites[] = {FaultSite::kDequeue, FaultSite::kCommit,
                                       FaultSite::kFsync,
                                       FaultSite::kWorkerPanic};
  FaultTrigger trigger;
  trigger.site = kCrashSites[mix.next() % 4];
  trigger.shard = static_cast<int>(mix.next() % static_cast<std::uint64_t>(shards));
  trigger.hit = 1 + mix.next() % max_hit;
  return FaultPlan().add(trigger);
}

FaultPlan FaultPlan::random_kill(std::uint64_t seed, int shards,
                                 std::uint64_t max_hit) {
  SLACKSCHED_EXPECTS(shards >= 1);
  SLACKSCHED_EXPECTS(max_hit >= 1);
  SplitMix64 mix(seed);
  constexpr FaultSite kKillSites[] = {FaultSite::kCommit, FaultSite::kFsync,
                                      FaultSite::kReplicationFrame,
                                      FaultSite::kWorkerPanic};
  FaultTrigger trigger;
  trigger.site = kKillSites[mix.next() % 4];
  trigger.shard =
      static_cast<int>(mix.next() % static_cast<std::uint64_t>(shards));
  trigger.hit = 1 + mix.next() % max_hit;
  trigger.action = FaultAction::kKill;
  return FaultPlan().add(trigger);
}

FaultInjector::FaultInjector(FaultPlan plan) {
  armed_.reserve(plan.triggers().size());
  for (const FaultTrigger& trigger : plan.triggers()) {
    SLACKSCHED_EXPECTS(trigger.shard >= 0);
    SLACKSCHED_EXPECTS(trigger.hit >= 1);
    armed_.push_back(Armed{trigger, false});
  }
}

bool FaultInjector::fires(FaultSite site, int shard) {
  std::lock_guard lock(mutex_);
  const std::uint64_t key = count_key(site, shard);
  const auto it = std::find(keys_.begin(), keys_.end(), key);
  std::size_t slot;
  if (it == keys_.end()) {
    slot = keys_.size();
    keys_.push_back(key);
    counts_.push_back(0);
  } else {
    slot = static_cast<std::size_t>(std::distance(keys_.begin(), it));
  }
  const std::uint64_t hit = ++counts_[slot];
  for (Armed& armed : armed_) {
    if (!armed.fired && armed.trigger.site == site &&
        armed.trigger.shard == shard && armed.trigger.hit == hit) {
      armed.fired = true;
      if (armed.trigger.action == FaultAction::kKill) {
        // Node failure, not thread failure: the process dies here, mutex
        // held, buffers unflushed — the honest SIGKILL the replication
        // property tests are built on.
        (void)::kill(::getpid(), SIGKILL);
      }
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::hits(FaultSite site, int shard) const {
  std::lock_guard lock(mutex_);
  const std::uint64_t key = count_key(site, shard);
  const auto it = std::find(keys_.begin(), keys_.end(), key);
  if (it == keys_.end()) return 0;
  return counts_[static_cast<std::size_t>(std::distance(keys_.begin(), it))];
}

std::size_t FaultInjector::fired() const {
  std::lock_guard lock(mutex_);
  std::size_t n = 0;
  for (const Armed& armed : armed_) {
    if (armed.fired) ++n;
  }
  return n;
}

}  // namespace slacksched
