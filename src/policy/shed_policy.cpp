#include "policy/shed_policy.hpp"

namespace slacksched {

std::vector<std::string> ShedPolicyConfig::validate() const {
  std::vector<std::string> errors;
  for (std::size_t c = 0; c < kCriticalityCount; ++c) {
    if (!(occupancy_limit[c] > 0.0)) {
      errors.push_back(
          "occupancy_limit[" +
          std::string(criticality_label(static_cast<Criticality>(c))) +
          "] must be > 0 (got " + std::to_string(occupancy_limit[c]) +
          "): a zero or negative limit sheds the class even on an empty "
          "queue");
    }
  }
  for (std::size_t c = 1; c < kCriticalityCount; ++c) {
    if (occupancy_limit[c] < occupancy_limit[c - 1]) {
      errors.push_back(
          "occupancy_limit must be non-decreasing in the class: " +
          std::string(criticality_label(static_cast<Criticality>(c))) +
          " (" + std::to_string(occupancy_limit[c]) + ") is below " +
          std::string(criticality_label(static_cast<Criticality>(c - 1))) +
          " (" + std::to_string(occupancy_limit[c - 1]) +
          "), which would shed high-criticality work before low");
    }
  }
  return errors;
}

}  // namespace slacksched
