#include "core/frontier_set.hpp"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/expects.hpp"

namespace slacksched {

namespace {
constexpr std::size_t kWordBits = 64;
}  // namespace

FrontierSet::FrontierSet(int machines)
    : machines_(machines),
      active_(machines),
      frontier_(static_cast<std::size_t>(machines), 0.0),
      order_(static_cast<std::size_t>(machines)),
      position_(static_cast<std::size_t>(machines)),
      idle_bits_((static_cast<std::size_t>(machines) + kWordBits - 1) /
                 kWordBits) {
  SLACKSCHED_EXPECTS(machines >= 1);
  reset();
}

FrontierSet::FrontierSet(int machines, std::vector<double> speeds)
    : FrontierSet(machines) {
  if (speeds.empty()) return;
  SLACKSCHED_EXPECTS(static_cast<int>(speeds.size()) == machines);
  bool uniform = true;
  for (const double s : speeds) {
    SLACKSCHED_EXPECTS(s > 0.0);
    if (s != 1.0) uniform = false;
  }
  // All-unit speeds normalize to the identical-machine representation so
  // the uniform fast paths (and their bit-exactness pins) still apply.
  if (!uniform) speed_ = std::move(speeds);
}

double FrontierSet::speed(int machine) const {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  if (speed_.empty()) return 1.0;
  return speed_[static_cast<std::size_t>(machine)];
}

void FrontierSet::reset() {
  active_ = machines_;
  if (!state_.empty()) {
    state_.assign(static_cast<std::size_t>(machines_),
                  static_cast<std::uint8_t>(MachineState::kActive));
  }
  std::fill(frontier_.begin(), frontier_.end(), 0.0);
  order_.resize(static_cast<std::size_t>(machines_));
  position_.resize(static_cast<std::size_t>(machines_));
  std::iota(order_.begin(), order_.end(), std::int32_t{0});
  std::iota(position_.begin(), position_.end(), std::int32_t{0});
  idle_watermark_ = 0.0;
  idle_bits_.assign(
      (static_cast<std::size_t>(machines_) + kWordBits - 1) / kWordBits,
      std::uint64_t{0});
  for (int i = 0; i < machines_; ++i) set_idle_bit(i, true);
}

TimePoint FrontierSet::frontier(int machine) const {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  return frontier_[static_cast<std::size_t>(machine)];
}

int FrontierSet::machine_at(int position) const {
  SLACKSCHED_EXPECTS(position >= 0 && position < active_);
  return order_[static_cast<std::size_t>(position)];
}

TimePoint FrontierSet::frontier_at(int position) const {
  SLACKSCHED_EXPECTS(position >= 0 && position < active_);
  return frontier_[static_cast<std::size_t>(
      order_[static_cast<std::size_t>(position)])];
}

int FrontierSet::position_of(int machine) const {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  return position_[static_cast<std::size_t>(machine)];
}

Duration FrontierSet::load(int machine, TimePoint now) const {
  return std::max(0.0, frontier(machine) - now);
}

Duration FrontierSet::load_at(int position, TimePoint now) const {
  return std::max(0.0, frontier_at(position) - now);
}

bool FrontierSet::ordered_before(int a, int b) const {
  const TimePoint fa = frontier_[static_cast<std::size_t>(a)];
  const TimePoint fb = frontier_[static_cast<std::size_t>(b)];
  return fa > fb || (fa == fb && a < b);
}

void FrontierSet::update(int machine, TimePoint value) {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  if (state_of(machine) != MachineState::kActive) {
    // A retiring machine only drains: replay can still restore an old
    // commitment onto it, but it is out of the sorted order and the idle
    // bitset, so no fit query will see the new frontier.
    frontier_[static_cast<std::size_t>(machine)] = value;
    return;
  }
  const int p = position_[static_cast<std::size_t>(machine)];
  frontier_[static_cast<std::size_t>(machine)] = value;
  if (p > 0 && ordered_before(machine, order_[static_cast<std::size_t>(p - 1)])) {
    // Moves toward the front: the insertion point is the first position in
    // [0, p) whose machine no longer precedes the updated one. The range
    // excluding position p is still sorted, so the predicate is monotone.
    int lo = 0;
    int hi = p;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (ordered_before(order_[static_cast<std::size_t>(mid)], machine)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    std::rotate(order_.begin() + lo, order_.begin() + p,
                order_.begin() + p + 1);
    for (int q = lo; q <= p; ++q) {
      position_[static_cast<std::size_t>(order_[static_cast<std::size_t>(q)])] =
          q;
    }
  } else if (p + 1 < active_ &&
             ordered_before(order_[static_cast<std::size_t>(p + 1)], machine)) {
    // Moves toward the back: the updated machine belongs immediately before
    // the first position in (p, m) whose machine it precedes.
    int lo = p + 1;
    int hi = active_;
    while (lo < hi) {
      const int mid = lo + (hi - lo) / 2;
      if (ordered_before(order_[static_cast<std::size_t>(mid)], machine)) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    std::rotate(order_.begin() + p, order_.begin() + p + 1,
                order_.begin() + lo);
    for (int q = p; q < lo; ++q) {
      position_[static_cast<std::size_t>(order_[static_cast<std::size_t>(q)])] =
          q;
    }
  }
  set_idle_bit(machine, value <= idle_watermark_);
}

int FrontierSet::first_position_not_above(TimePoint value) const {
  int lo = 0;
  int hi = active_;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (frontier_at(mid) <= value) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

int FrontierSet::first_position_below(TimePoint value) const {
  int lo = 0;
  int hi = active_;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (frontier_at(mid) < value) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

int FrontierSet::best_fit(TimePoint now, Duration proc, TimePoint deadline) {
  if (!speed_.empty()) return best_fit_scan(now, proc, deadline);
  // Loads are non-increasing in the sorted position and floating-point
  // addition is weakly monotone, so feasibility splits the order into an
  // infeasible prefix and a feasible suffix; the first feasible position
  // carries the maximum feasible load.
  int lo = 0;
  int hi = active_;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (approx_le(now + load_at(mid, now) + proc, deadline)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  if (lo == active_) return -1;
  return min_machine_with_load_at(lo, now);
}

int FrontierSet::best_fit_scan(TimePoint now, Duration proc,
                               TimePoint deadline) const {
  int chosen = -1;
  Duration best = 0.0;
  for (int i = 0; i < machines_; ++i) {
    if (state_of(i) != MachineState::kActive) continue;
    const Duration l = load(i, now);
    if (!approx_le(now + l + exec_time(i, proc), deadline)) continue;
    if (chosen < 0 || l > best) {
      chosen = i;
      best = l;
    }
  }
  return chosen;
}

int FrontierSet::least_loaded_fit_scan(TimePoint now, Duration proc,
                                       TimePoint deadline) const {
  int chosen = -1;
  Duration best = 0.0;
  for (int i = 0; i < machines_; ++i) {
    if (state_of(i) != MachineState::kActive) continue;
    const Duration l = load(i, now);
    if (!approx_le(now + l + exec_time(i, proc), deadline)) continue;
    if (chosen < 0 || l < best) {
      chosen = i;
      best = l;
    }
  }
  return chosen;
}

int FrontierSet::least_loaded_fit(TimePoint now, Duration proc,
                                  TimePoint deadline) {
  if (!speed_.empty()) return least_loaded_fit_scan(now, proc, deadline);
  // The last position holds the minimum load, and feasibility is monotone
  // in the position, so the least loaded machine is feasible iff any is.
  const int tail = active_ - 1;
  if (!approx_le(now + load_at(tail, now) + proc, deadline)) return -1;
  const Duration min_load = load_at(tail, now);
  int lo = 0;
  int hi = tail;
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (load_at(mid, now) == min_load) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return min_machine_with_load_at(lo, now);
}

int FrontierSet::min_machine_with_load_at(int position, TimePoint now) {
  const Duration value = load_at(position, now);
  if (value == 0.0) return min_idle_machine(now);
  // Positive load: machines sharing a frontier form one contiguous run
  // ordered by ascending index, so each run's head is its lowest index.
  // Distinct frontiers can still round to the same load; jump across run
  // heads (each found by binary search) until the load changes.
  int best = order_[static_cast<std::size_t>(position)];
  int q = first_position_below(frontier_[static_cast<std::size_t>(best)]);
  while (q < active_ && load_at(q, now) == value) {
    const int machine = order_[static_cast<std::size_t>(q)];
    best = std::min(best, machine);
    q = first_position_below(frontier_[static_cast<std::size_t>(machine)]);
  }
  return best;
}

int FrontierSet::min_idle_machine(TimePoint now) {
  if (now < idle_watermark_) {
    rebuild_idle_bits(now);
  } else if (now > idle_watermark_) {
    advance_idle_watermark(now);
  }
  for (std::size_t word = 0; word < idle_bits_.size(); ++word) {
    if (idle_bits_[word] != 0) {
      return static_cast<int>(
          word * kWordBits +
          static_cast<std::size_t>(std::countr_zero(idle_bits_[word])));
    }
  }
  return -1;
}

void FrontierSet::set_idle_bit(int machine, bool idle) {
  const std::size_t word = static_cast<std::size_t>(machine) / kWordBits;
  const std::uint64_t mask = std::uint64_t{1}
                             << (static_cast<std::size_t>(machine) % kWordBits);
  if (idle) {
    idle_bits_[word] |= mask;
  } else {
    idle_bits_[word] &= ~mask;
  }
}

void FrontierSet::rebuild_idle_bits(TimePoint now) {
  std::fill(idle_bits_.begin(), idle_bits_.end(), std::uint64_t{0});
  for (int i = 0; i < machines_; ++i) {
    if (state_of(i) != MachineState::kActive) continue;
    if (frontier_[static_cast<std::size_t>(i)] <= now) set_idle_bit(i, true);
  }
  idle_watermark_ = now;
}

void FrontierSet::advance_idle_watermark(TimePoint now) {
  // Machines whose frontier lies in (idle_watermark_, now] became idle
  // since the last query; they occupy a contiguous position range. Bits of
  // machines at or below the old watermark are already correct. Only
  // active machines appear in the sorted order, so retiring machines never
  // gain an idle bit here.
  const int begin = first_position_not_above(now);
  const int end = first_position_not_above(idle_watermark_);
  for (int p = begin; p < end; ++p) {
    set_idle_bit(order_[static_cast<std::size_t>(p)], true);
  }
  idle_watermark_ = now;
}

// --- elastic surface ---

bool FrontierSet::is_active(int machine) const {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  return state_of(machine) == MachineState::kActive;
}

bool FrontierSet::is_retiring(int machine) const {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  return state_of(machine) == MachineState::kRetiring;
}

void FrontierSet::ensure_states() {
  if (state_.empty()) {
    state_.assign(static_cast<std::size_t>(machines_),
                  static_cast<std::uint8_t>(MachineState::kActive));
  }
}

void FrontierSet::insert_into_order(int machine) {
  // The caller has not yet bumped active_: order_ currently holds exactly
  // the machines sorted, and the new one belongs at its lower bound.
  int lo = 0;
  int hi = static_cast<int>(order_.size());
  while (lo < hi) {
    const int mid = lo + (hi - lo) / 2;
    if (ordered_before(order_[static_cast<std::size_t>(mid)], machine)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  order_.insert(order_.begin() + lo, static_cast<std::int32_t>(machine));
  for (int q = lo; q < static_cast<int>(order_.size()); ++q) {
    position_[static_cast<std::size_t>(order_[static_cast<std::size_t>(q)])] =
        q;
  }
}

int FrontierSet::add_machine() {
  SLACKSCHED_EXPECTS(speed_.empty());
  ensure_states();
  // Reuse the lowest-index retired machine so a shrink-then-grow sequence
  // keeps the index space dense (and WAL replay deterministic).
  for (int i = 0; i < machines_; ++i) {
    if (state_of(i) == MachineState::kRetired) {
      state_[static_cast<std::size_t>(i)] =
          static_cast<std::uint8_t>(MachineState::kActive);
      frontier_[static_cast<std::size_t>(i)] = 0.0;
      insert_into_order(i);
      ++active_;
      set_idle_bit(i, true);
      return i;
    }
  }
  const int machine = machines_;
  ++machines_;
  frontier_.push_back(0.0);
  position_.push_back(-1);
  state_.push_back(static_cast<std::uint8_t>(MachineState::kActive));
  if (idle_bits_.size() * kWordBits < static_cast<std::size_t>(machines_)) {
    idle_bits_.push_back(0);
  }
  insert_into_order(machine);
  ++active_;
  set_idle_bit(machine, true);
  return machine;
}

void FrontierSet::begin_retire(int machine) {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  SLACKSCHED_EXPECTS(speed_.empty());
  SLACKSCHED_EXPECTS(active_ > 1);
  ensure_states();
  SLACKSCHED_EXPECTS(state_of(machine) == MachineState::kActive);
  const int p = position_[static_cast<std::size_t>(machine)];
  order_.erase(order_.begin() + p);
  position_[static_cast<std::size_t>(machine)] = -1;
  for (int q = p; q < static_cast<int>(order_.size()); ++q) {
    position_[static_cast<std::size_t>(order_[static_cast<std::size_t>(q)])] =
        q;
  }
  --active_;
  state_[static_cast<std::size_t>(machine)] =
      static_cast<std::uint8_t>(MachineState::kRetiring);
  set_idle_bit(machine, false);
}

bool FrontierSet::retire_drained(int machine, TimePoint now) const {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  return state_of(machine) == MachineState::kRetiring &&
         frontier_[static_cast<std::size_t>(machine)] <= now;
}

void FrontierSet::finish_retire(int machine) {
  SLACKSCHED_EXPECTS(machine >= 0 && machine < machines_);
  SLACKSCHED_EXPECTS(state_of(machine) == MachineState::kRetiring);
  state_[static_cast<std::size_t>(machine)] =
      static_cast<std::uint8_t>(MachineState::kRetired);
  frontier_[static_cast<std::size_t>(machine)] = 0.0;
}

int FrontierSet::retire_candidate() const {
  SLACKSCHED_EXPECTS(active_ >= 1);
  return order_[static_cast<std::size_t>(active_ - 1)];
}

}  // namespace slacksched
