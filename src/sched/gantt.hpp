// ASCII Gantt rendering of committed schedules — used to regenerate the
// paper's Fig. 3 (online vs. optimal schedule of the adversary's red path)
// in the terminal.
#pragma once

#include <iosfwd>
#include <string>

#include "common/svg.hpp"
#include "sched/schedule.hpp"

namespace slacksched {

/// Options for Gantt rendering.
struct GanttOptions {
  int width = 100;          ///< characters across the time axis
  TimePoint t_end = -1.0;   ///< horizon; <0 means use the schedule makespan
  std::string title;
};

/// Renders one row per machine; each placement is drawn as a run of the
/// job-id's last digit bracketed by '[' and ')'. Idle time is '.'.
void render_gantt(std::ostream& out, const Schedule& schedule,
                  const GanttOptions& options = {});

/// SVG variant: one lane per machine, jobs as colored blocks labelled with
/// their ids. Used by the figure benches to emit Fig.-3-style artifacts.
[[nodiscard]] SvgDocument render_gantt_svg(const Schedule& schedule,
                                           const GanttOptions& options = {});

}  // namespace slacksched
