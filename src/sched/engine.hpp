// The commitment-enforcing simulation engine.
//
// Replays an instance against an OnlineScheduler in submission order and
// records every decision into a Schedule. Acceptance is binding: the engine
// immediately checks that each committed allocation is physically possible
// (machine in range, start after release, no overlap with earlier
// commitments, completion by the deadline) and refuses to continue past a
// violation — an algorithm cannot gain objective value through an illegal
// promise. This realizes the "immediate commitment" model of the paper.
#pragma once

#include <string>
#include <vector>

#include "job/instance.hpp"
#include "sched/metrics.hpp"
#include "sched/online.hpp"
#include "sched/schedule.hpp"

namespace slacksched {

/// Per-job record of what the algorithm decided.
struct DecisionRecord {
  Job job;
  Decision decision;
};

/// Everything a run produced.
struct RunResult {
  Schedule schedule;
  RunMetrics metrics;
  std::vector<DecisionRecord> decisions;
  /// Description of the first commitment violation, empty when clean. Tests
  /// assert on this being empty; benches treat a violation as a fatal bug.
  std::string commitment_violation;

  [[nodiscard]] bool clean() const { return commitment_violation.empty(); }
};

/// Runs the scheduler over the instance. The scheduler is reset() first.
/// If `halt_on_violation` is true (default), processing stops at the first
/// illegal commitment and the violation is reported in the result.
[[nodiscard]] RunResult run_online(OnlineScheduler& scheduler,
                                   const Instance& instance,
                                   bool halt_on_violation = true);

}  // namespace slacksched
