/// \file
/// Crash recovery for a shard's commit log: replays the WAL written by
/// service/commit_log.hpp, truncates a torn tail, and rebuilds the shard's
/// committed Schedule (and, optionally, the scheduler's internal state via
/// OnlineScheduler::restore_commitment). Every replayed record passes
/// through validate_commitment — the same legality path the live engine
/// uses — so a log that decodes cleanly but describes an impossible
/// schedule (overlap, deadline miss) fails recovery outright instead of
/// resurrecting a corrupt state.
#pragma once

#include <cstddef>
#include <string>

#include "sched/metrics.hpp"
#include "sched/online.hpp"
#include "sched/schedule.hpp"

namespace slacksched {

/// What replaying one commit log produced.
struct RecoveryResult {
  /// The committed schedule rebuilt from the log (empty for a fresh or
  /// missing log).
  Schedule schedule;
  /// Engine-equivalent counters for the replayed commitments: every record
  /// is one submitted-and-accepted job.
  RunMetrics metrics;
  std::size_t records_replayed = 0;
  /// Bytes discarded from a torn tail (0 when the log ended cleanly).
  std::size_t bytes_truncated = 0;
  bool tail_truncated = false;
  /// False on a hard failure: I/O error, bad magic/version, machine-count
  /// mismatch, or a CRC-valid record that fails commitment validation.
  bool ok = true;
  std::string error;

  [[nodiscard]] bool clean() const { return ok && !tail_truncated; }
};

/// Replays the commit log at `path` and rebuilds the committed state.
///
///  - A missing or empty-but-for-the-header log recovers to a fresh state.
///  - A torn tail (short frame, implausible length, short payload, or CRC
///    mismatch) ends the replay at the last whole record; when
///    `truncate_file` is set (the default) the file is truncated back to
///    that offset so a subsequent CommitLog::open appends from a clean
///    boundary.
///  - Each record is re-validated against the schedule built so far with
///    validate_commitment; a semantic violation is a hard error (ok =
///    false), not a truncation — the log lied, and silently dropping the
///    record would un-commit an accepted job.
///  - When `scheduler` is non-null each valid record is also pushed into
///    OnlineScheduler::restore_commitment so the algorithm's internal
///    state (e.g. machine frontiers) matches the rebuilt schedule; a
///    scheduler that cannot restore (returns false) is a hard error.
///  - Related machines: the rebuilt Schedule carries the speed profile of
///    the recovering scheduler (speed_profile()), or the explicit `speeds`
///    for a scheduler-less replay — so replayed occupancies use the same
///    execution times p_j / s_i the original run committed with. Passing
///    neither replays under the identical-machine model.
///  - Elastic capacity: control records (commit_log.hpp sentinel ids)
///    replay the original run's grow / retire-begin / retire-done sequence
///    in log order against the scheduler's elastic surface, so the machine
///    pool at every replayed commitment — and the final post-crash machine
///    count — exactly matches the pre-crash run. `machines` stays the
///    *initial* count the log header was written with. A grow that lands
///    on a different machine index than the logged one is a hard error
///    (the deterministic resize sequence diverged).
///
/// The caller resets the scheduler before invoking recovery.
[[nodiscard]] RecoveryResult recover_commit_log(
    const std::string& path, int machines,
    OnlineScheduler* scheduler = nullptr, bool truncate_file = true,
    const SpeedProfile* speeds = nullptr);

}  // namespace slacksched
