// Small statistics toolkit used by benches and tests: streaming moments
// (Welford), order statistics, and a convenience summary struct.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace slacksched {

/// Numerically stable streaming mean/variance/min/max accumulator.
class OnlineStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  /// Smallest sample seen; quiet NaN for an empty accumulator (an empty
  /// sweep must not report a fake 0 minimum).
  [[nodiscard]] double min() const;
  /// Largest sample seen; quiet NaN for an empty accumulator.
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const OnlineStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-quantile (q in [0,1]) using linear interpolation between
/// order statistics. The input is copied and sorted.
[[nodiscard]] double quantile(std::vector<double> values, double q);

/// Five-number + mean summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;

  [[nodiscard]] std::string to_string() const;
};

[[nodiscard]] Summary summarize(const std::vector<double>& values);

}  // namespace slacksched
